"""Engine IR and compiler-pass tests.

Every pass must preserve netlist semantics bit for bit; the property tests
check each pass individually and the full pipeline against
``LUTNetlist.evaluate_outputs`` on random DAGs (LUT widths 2..10, ragged and
empty batches).  The structural tests pin down what each pass is *for*:
folding really folds, fusion really fuses under the cost model, and
decomposition matches the hardware flow node for node.
"""

import numpy as np
import pytest

from repro.core import LUTNetlist
from repro.engine import (
    ConstantFoldPass,
    DecomposePass,
    DedupTablesPass,
    FuseChainsPass,
    IRGraph,
    MUX_TABLE,
    PassManager,
    compile_netlist,
    default_passes,
    optimize_netlist,
    random_netlist,
    table_cost,
)
from repro.utils.rng import as_rng

ALL_PASSES = [
    ConstantFoldPass(),
    FuseChainsPass(),
    DedupTablesPass(),
    DecomposePass(max_inputs=4),
    DecomposePass(max_inputs=6),
]


def _random_case(seed):
    rng = as_rng(9000 + seed)
    n_primary = int(rng.integers(2, 32))
    n_nodes = int(rng.integers(1, 90))
    netlist = random_netlist(
        n_primary, n_nodes, seed=seed, lut_widths=(2, 3, 4, 5, 6, 7, 8, 9, 10)
    )
    n_samples = int(rng.integers(0, 200))
    X = rng.integers(0, 2, size=(n_samples, n_primary), dtype=np.uint8)
    return netlist, X


class TestIRGraph:
    @pytest.mark.parametrize("seed", range(8))
    def test_round_trip_is_lossless(self, seed):
        netlist, X = _random_case(seed)
        back = IRGraph.from_netlist(netlist).to_netlist()
        assert [n.name for n in back.nodes] == [n.name for n in netlist.nodes]
        assert [n.kind for n in back.nodes] == [n.kind for n in netlist.nodes]
        assert back.output_signals == netlist.output_signals
        np.testing.assert_array_equal(
            back.evaluate_outputs(X), netlist.evaluate_outputs(X)
        )

    def test_tables_are_copied(self):
        netlist = LUTNetlist(n_primary_inputs=1)
        netlist.add_node("a", "rinc0", ["in0"], np.array([0, 1]))
        netlist.mark_output("a")
        graph = IRGraph.from_netlist(netlist)
        graph.node("a").table[:] = 0
        assert netlist.nodes[0].table[1] == 1

    def test_fanout_counts_outputs_as_reads(self):
        netlist = LUTNetlist(n_primary_inputs=2)
        netlist.add_node("a", "rinc0", ["in0", "in1"], np.array([0, 1, 1, 0]))
        netlist.add_node("b", "rinc0", ["a"], np.array([1, 0]))
        netlist.mark_output("a")
        netlist.mark_output("b")
        fanout = IRGraph.from_netlist(netlist).fanout_counts()
        assert fanout == {"a": 2, "b": 1}

    def test_validate_rejects_broken_graph(self):
        graph = IRGraph(n_primary_inputs=2)
        graph.add_node("a", "rinc0", ["in0"], np.array([0, 1]))
        graph.node("a").inputs = ["in0", "in1"]  # table is now too small
        with pytest.raises(ValueError):
            graph.validate()


class TestPassEquivalence:
    """The heart of the compiler contract: passes never change semantics."""

    @pytest.mark.parametrize("seed", range(12))
    def test_each_pass_is_equivalent(self, seed):
        netlist, X = _random_case(seed)
        reference = netlist.evaluate_outputs(X)
        for p in ALL_PASSES:
            graph = p.run(IRGraph.from_netlist(netlist))
            graph.validate()
            np.testing.assert_array_equal(
                graph.to_netlist().evaluate_outputs(X),
                reference,
                err_msg=f"pass {p.name} diverged on seed {seed}",
            )

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("max_lut_inputs", [None, 6, 4])
    def test_full_pipeline_is_equivalent(self, seed, max_lut_inputs):
        netlist, X = _random_case(seed)
        optimized = optimize_netlist(netlist, max_lut_inputs=max_lut_inputs)
        np.testing.assert_array_equal(
            optimized.evaluate_outputs(X), netlist.evaluate_outputs(X)
        )
        compiled = compile_netlist(netlist, max_lut_inputs=max_lut_inputs)
        np.testing.assert_array_equal(
            compiled.predict_batch(X), netlist.evaluate_outputs(X)
        )

    @pytest.mark.parametrize("n_samples", [0, 1, 63, 64, 65])
    def test_pipeline_on_ragged_batches(self, n_samples):
        netlist = random_netlist(10, 40, seed=7, lut_widths=(2, 5, 8))
        rng = as_rng(7)
        X = rng.integers(0, 2, size=(n_samples, 10), dtype=np.uint8)
        compiled = compile_netlist(netlist, max_lut_inputs=6)
        np.testing.assert_array_equal(
            compiled.predict_batch(X), netlist.evaluate_outputs(X)
        )

    def test_pass_manager_runs_in_order_with_validation(self):
        netlist, X = _random_case(3)
        manager = PassManager(default_passes(max_lut_inputs=6), validate=True)
        graph = manager.run(IRGraph.from_netlist(netlist))
        assert all(node.n_inputs <= 6 for node in graph.nodes)
        np.testing.assert_array_equal(
            graph.to_netlist().evaluate_outputs(X), netlist.evaluate_outputs(X)
        )


class TestConstantFold:
    def test_folds_constant_cone(self):
        netlist = LUTNetlist(n_primary_inputs=1)
        netlist.add_node("one", "mat", [], np.array([1]))
        netlist.add_node("inv", "rinc0", ["one"], np.array([1, 0]))
        netlist.add_node("and2", "mat", ["inv", "in0"], np.array([0, 0, 0, 1]))
        netlist.mark_output("and2")
        graph = ConstantFoldPass().run(IRGraph.from_netlist(netlist))
        # inv(1) == 0, and2(0, x) == 0: the whole cone folds to constant 0
        assert graph.n_nodes == 1
        assert graph.node("and2").is_constant()
        assert graph.node("and2").constant_value() == 0

    def test_support_reduction_drops_dont_care_inputs(self):
        netlist = LUTNetlist(n_primary_inputs=2)
        # table ignores its second input: f(a, b) = not a
        netlist.add_node("f", "rinc0", ["in0", "in1"], np.array([1, 1, 0, 0]))
        netlist.mark_output("f")
        graph = ConstantFoldPass().run(IRGraph.from_netlist(netlist))
        assert graph.node("f").inputs == ["in0"]
        np.testing.assert_array_equal(graph.node("f").table, [1, 0])

    def test_support_reduced_buffer_aliases_to_its_input(self):
        netlist = LUTNetlist(n_primary_inputs=2)
        # f(a, b) = a: support reduction leaves an identity buffer, which
        # aliases away entirely — the output becomes the primary input
        netlist.add_node("f", "rinc0", ["in0", "in1"], np.array([0, 0, 1, 1]))
        netlist.mark_output("f")
        graph = ConstantFoldPass().run(IRGraph.from_netlist(netlist))
        assert graph.n_nodes == 0
        assert graph.outputs == ["in0"]
        X = np.array([[0, 1], [1, 0]], dtype=np.uint8)
        np.testing.assert_array_equal(
            graph.to_netlist().evaluate_outputs(X), netlist.evaluate_outputs(X)
        )

    def test_identity_buffer_is_aliased_away(self):
        netlist = LUTNetlist(n_primary_inputs=1)
        netlist.add_node("buf", "rinc0", ["in0"], np.array([0, 1]))
        netlist.add_node("inv", "rinc0", ["buf"], np.array([1, 0]))
        netlist.mark_output("inv")
        graph = ConstantFoldPass().run(IRGraph.from_netlist(netlist))
        assert graph.n_nodes == 1
        assert graph.node("inv").inputs == ["in0"]

    def test_dead_nodes_pruned(self):
        netlist = random_netlist(8, 50, seed=11, n_outputs=2)
        graph = ConstantFoldPass().run(IRGraph.from_netlist(netlist))
        live = graph.live_nodes()
        assert all(node.name in live for node in graph.nodes)
        assert graph.n_nodes < 50

    def test_inverters_survive(self):
        netlist = LUTNetlist(n_primary_inputs=1)
        netlist.add_node("inv", "rinc0", ["in0"], np.array([1, 0]))
        netlist.mark_output("inv")
        graph = ConstantFoldPass().run(IRGraph.from_netlist(netlist))
        assert graph.n_nodes == 1


class TestFuseChains:
    def _chain(self, length, width=2):
        """A single chain of 2-input LUTs ending in the only output."""
        netlist = LUTNetlist(n_primary_inputs=2)
        previous = "in0"
        for i in range(length):
            netlist.add_node(
                f"c{i}", "rinc0", [previous, "in1"], np.array([0, 1, 1, 0])
            )
            previous = f"c{i}"
        netlist.mark_output(previous)
        return netlist

    def test_chain_collapses_to_one_lut(self):
        netlist = self._chain(40)
        graph = FuseChainsPass().run(IRGraph.from_netlist(netlist))
        # every link reads the same two signals, so the fused support stays 2
        assert graph.n_nodes == 1
        assert graph.node("c39").n_inputs == 2

    def test_fusion_respects_cost_model(self):
        # two disjoint-support 6-input LUTs: fusing would cost 2**11 > 2**7,
        # so the chain must be left alone
        netlist = LUTNetlist(n_primary_inputs=11)
        rng = as_rng(0)
        netlist.add_node(
            "a", "rinc0", [f"in{i}" for i in range(6)],
            rng.integers(0, 2, size=64, dtype=np.uint8),
        )
        netlist.add_node(
            "b", "mat", ["a"] + [f"in{i}" for i in range(6, 11)],
            rng.integers(0, 2, size=64, dtype=np.uint8),
        )
        netlist.mark_output("b")
        graph = FuseChainsPass().run(IRGraph.from_netlist(netlist))
        assert graph.n_nodes == 2

    def test_fusion_respects_max_width(self):
        # child (3 inputs) into parent (3 inputs, all shared): fused width
        # 3, cost 2**3 < 2**3 + 2**3 — admitted by the cost model
        netlist = LUTNetlist(n_primary_inputs=3)
        rng = as_rng(1)
        netlist.add_node(
            "a", "rinc0", ["in0", "in1", "in2"],
            rng.integers(0, 2, size=8, dtype=np.uint8),
        )
        netlist.add_node(
            "b", "mat", ["a", "in0", "in1"],
            rng.integers(0, 2, size=8, dtype=np.uint8),
        )
        netlist.mark_output("b")
        fused = FuseChainsPass().run(IRGraph.from_netlist(netlist))
        assert fused.n_nodes == 1
        capped = FuseChainsPass(max_width=2).run(IRGraph.from_netlist(netlist))
        assert capped.n_nodes == 2  # the width cap forbids it

    def test_cost_model_rejects_equal_and_widening_pairs(self):
        # disjoint 2-input child into 2-input parent: fused width 3, cost
        # 2**3 == 2**2 + 2**2 — an equal-cost fusion, rejected (it trades
        # saved gather/scatter for a deeper cascade)
        netlist = LUTNetlist(n_primary_inputs=3)
        rng = as_rng(2)
        netlist.add_node(
            "a", "rinc0", ["in0", "in1"], rng.integers(0, 2, size=4, dtype=np.uint8)
        )
        netlist.add_node(
            "b", "mat", ["a", "in2"], rng.integers(0, 2, size=4, dtype=np.uint8)
        )
        netlist.mark_output("b")
        graph = FuseChainsPass().run(IRGraph.from_netlist(netlist))
        assert graph.n_nodes == 2
        # child (3 inputs) into parent (2 inputs, disjoint): strictly
        # widening, 2**4 > 2**2 + 2**3 — also rejected
        netlist = LUTNetlist(n_primary_inputs=4)
        netlist.add_node(
            "c", "rinc0", ["in0", "in1", "in2"],
            rng.integers(0, 2, size=8, dtype=np.uint8),
        )
        netlist.add_node(
            "d", "mat", ["c", "in3"], rng.integers(0, 2, size=4, dtype=np.uint8)
        )
        netlist.mark_output("d")
        graph = FuseChainsPass().run(IRGraph.from_netlist(netlist))
        assert graph.n_nodes == 2

    def test_outputs_are_never_fused_away(self):
        netlist = self._chain(5)
        netlist.mark_output("c2")  # an interior link is externally visible
        graph = FuseChainsPass().run(IRGraph.from_netlist(netlist))
        names = {node.name for node in graph.nodes}
        assert "c2" in names and "c4" in names

    def test_fusion_reduces_depth_and_nodes(self):
        netlist = random_netlist(6, 80, seed=13, lut_widths=(2, 3), n_outputs=4)
        graph = IRGraph.from_netlist(netlist)
        before_depth = graph.logic_depth()
        fused = FuseChainsPass().run(graph)
        assert fused.n_nodes < 80
        assert fused.logic_depth() <= before_depth


class TestDedupTables:
    def _duplicated_trees(self):
        """Three copies of the same 2-input tree feeding one consumer."""
        netlist = LUTNetlist(n_primary_inputs=2)
        xor = np.array([0, 1, 1, 0], dtype=np.uint8)
        for i in range(3):
            netlist.add_node(f"t{i}", "rinc0", ["in0", "in1"], xor)
        netlist.add_node(
            "vote", "mat", ["t0", "t1", "t2"],
            np.array([0, 0, 0, 1, 0, 1, 1, 1], dtype=np.uint8),
        )
        netlist.mark_output("vote")
        return netlist

    def test_identical_tables_share_one_node(self):
        netlist = self._duplicated_trees()
        graph = DedupTablesPass().run(IRGraph.from_netlist(netlist))
        graph.validate()
        names = {node.name for node in graph.nodes}
        assert names == {"t0", "vote"}
        # the 3-way majority over three equal signals is the signal itself
        # after the consumer's table is re-expressed over distinct inputs
        assert graph.node("vote").inputs == ["t0"]
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.uint8)
        np.testing.assert_array_equal(
            graph.to_netlist().evaluate_outputs(X),
            netlist.evaluate_outputs(X),
        )

    def test_transitive_duplicates_converge(self):
        # two identical chains: dedup at level 0 must expose (and collapse)
        # the level-1 duplicates whose inputs only match after aliasing
        netlist = LUTNetlist(n_primary_inputs=2)
        inv = np.array([1, 0], dtype=np.uint8)
        for side in ("a", "b"):
            netlist.add_node(f"{side}0", "rinc0", ["in0"], inv)
            netlist.add_node(f"{side}1", "rinc0", [f"{side}0"], inv)
        netlist.add_node(
            "xor", "mat", ["a1", "b1"], np.array([0, 1, 1, 0], dtype=np.uint8)
        )
        netlist.mark_output("xor")
        graph = DedupTablesPass().run(IRGraph.from_netlist(netlist))
        graph.validate()
        assert {node.name for node in graph.nodes} == {"a0", "a1", "xor"}

    def test_duplicate_outputs_are_re_pointed(self):
        netlist = LUTNetlist(n_primary_inputs=1)
        inv = np.array([1, 0], dtype=np.uint8)
        netlist.add_node("p", "rinc0", ["in0"], inv)
        netlist.add_node("q", "rinc0", ["in0"], inv)
        netlist.mark_output("p")
        netlist.mark_output("q")
        graph = DedupTablesPass().run(IRGraph.from_netlist(netlist))
        graph.validate()
        assert graph.outputs == ["p", "p"]
        X = np.array([[0], [1]], dtype=np.uint8)
        np.testing.assert_array_equal(
            graph.to_netlist().evaluate_outputs(X),
            netlist.evaluate_outputs(X),
        )

    def test_same_table_different_inputs_not_merged(self):
        netlist = LUTNetlist(n_primary_inputs=2)
        inv = np.array([1, 0], dtype=np.uint8)
        netlist.add_node("p", "rinc0", ["in0"], inv)
        netlist.add_node("q", "rinc0", ["in1"], inv)
        netlist.mark_output("p")
        netlist.mark_output("q")
        graph = DedupTablesPass().run(IRGraph.from_netlist(netlist))
        assert graph.n_nodes == 2

    @pytest.mark.parametrize("seed", range(12))
    def test_cost_never_increases(self, seed):
        """The satellite's cost-model assertion: dedup only removes work."""
        netlist, X = _random_case(seed)
        graph = IRGraph.from_netlist(netlist)
        before = table_cost(graph)
        graph = DedupTablesPass().run(graph)
        assert table_cost(graph) <= before
        np.testing.assert_array_equal(
            graph.to_netlist().evaluate_outputs(X),
            netlist.evaluate_outputs(X),
        )

    @pytest.mark.parametrize("max_lut_inputs", [None, 6, 4])
    def test_default_pipeline_cost_never_increases(self, max_lut_inputs):
        """End-to-end guard over the full (now dedup-bearing) pipeline on
        the shared-structure workload dedup exists for."""
        netlist, X = _random_case(5)
        optimized = optimize_netlist(netlist, max_lut_inputs=max_lut_inputs)
        if max_lut_inputs is None:
            # decomposition legitimately trades cost for fabric width, so
            # the monotonicity claim is for the non-decomposing pipeline
            assert table_cost(optimized) <= table_cost(netlist)
        np.testing.assert_array_equal(
            optimized.evaluate_outputs(X), netlist.evaluate_outputs(X)
        )


class TestDecompose:
    def test_matches_hardware_decomposition_exactly(self, rng):
        """Engine pass and hardware wrapper are one implementation."""
        from repro.hardware import decompose_netlist

        netlist = LUTNetlist(n_primary_inputs=9)
        table = rng.integers(0, 2, size=512, dtype=np.uint8)
        netlist.add_node("wide", "rinc0", [f"in{i}" for i in range(9)], table)
        netlist.mark_output("wide")
        via_pass = (
            DecomposePass(max_inputs=6).run(IRGraph.from_netlist(netlist)).to_netlist()
        )
        via_hardware = decompose_netlist(netlist, max_inputs=6)
        assert [n.name for n in via_pass.nodes] == [n.name for n in via_hardware.nodes]
        assert [n.kind for n in via_pass.nodes] == [n.kind for n in via_hardware.nodes]
        for a, b in zip(via_pass.nodes, via_hardware.nodes):
            assert a.input_signals == b.input_signals
            np.testing.assert_array_equal(a.table, b.table)

    def test_mux_nodes_use_the_canonical_table(self, rng):
        netlist = LUTNetlist(n_primary_inputs=8)
        table = rng.integers(0, 2, size=256, dtype=np.uint8)
        netlist.add_node("w", "rinc0", [f"in{i}" for i in range(8)], table)
        netlist.mark_output("w")
        graph = DecomposePass(max_inputs=6).run(IRGraph.from_netlist(netlist))
        muxes = [n for n in graph.nodes if n.kind == "mux"]
        assert len(muxes) == 3
        for mux in muxes:
            np.testing.assert_array_equal(mux.table, MUX_TABLE)
        assert muxes[-1].name == "w"  # the root mux keeps the node's name

    def test_rejects_tiny_fabric(self):
        with pytest.raises(ValueError):
            DecomposePass(max_inputs=1)


class TestOptimizeNetlist:
    def test_empty_pass_list_is_identity(self):
        netlist = random_netlist(5, 10, seed=2)
        assert optimize_netlist(netlist, passes=()) is netlist

    def test_explicit_passes_exclude_max_lut_inputs(self):
        netlist = random_netlist(5, 10, seed=2)
        with pytest.raises(ValueError):
            optimize_netlist(netlist, passes=(ConstantFoldPass(),), max_lut_inputs=6)

    def test_default_pipeline_decomposes_when_asked(self):
        netlist = random_netlist(16, 40, seed=3, lut_widths=(8,))
        optimized = optimize_netlist(netlist, max_lut_inputs=6)
        assert all(node.n_inputs <= 6 for node in optimized.nodes)
