"""Property-based equivalence: the packed engine vs. the naive simulator.

The compiled engine must be *bit-identical* to ``LUTNetlist.evaluate_outputs``
on arbitrary netlists, and the classifiers' ``predict_batch`` fast paths must
reproduce their slow paths exactly.
"""

import numpy as np
import pytest

from repro.core import PoETBiNClassifier, RINCClassifier
from repro.engine import compile_netlist, random_netlist
from repro.utils.rng import as_rng


class TestRandomNetlistEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_dags(self, seed):
        """Random widths P in {2..8}, random depth, random batch size."""
        rng = as_rng(1000 + seed)
        n_primary = int(rng.integers(4, 48))
        n_nodes = int(rng.integers(1, 150))
        netlist = random_netlist(
            n_primary, n_nodes, seed=seed, lut_widths=(2, 3, 4, 5, 6, 7, 8)
        )
        compiled = compile_netlist(netlist)
        n_samples = int(rng.integers(1, 300))
        X = rng.integers(0, 2, size=(n_samples, n_primary), dtype=np.uint8)
        np.testing.assert_array_equal(
            compiled.predict_batch(X), netlist.evaluate_outputs(X)
        )

    @pytest.mark.parametrize("width", [2, 3, 4, 5, 6, 7, 8])
    def test_single_width(self, rng, width):
        netlist = random_netlist(16, 40, seed=width, lut_widths=(width,))
        compiled = compile_netlist(netlist)
        X = rng.integers(0, 2, size=(129, 16), dtype=np.uint8)
        np.testing.assert_array_equal(
            compiled.predict_batch(X), netlist.evaluate_outputs(X)
        )

    @pytest.mark.parametrize("n_samples", [1, 63, 64, 65, 200])
    def test_ragged_batches(self, rng, n_samples):
        netlist = random_netlist(12, 30, seed=3)
        compiled = compile_netlist(netlist)
        X = rng.integers(0, 2, size=(n_samples, 12), dtype=np.uint8)
        np.testing.assert_array_equal(
            compiled.predict_batch(X), netlist.evaluate_outputs(X)
        )

    def test_deep_chain(self, rng):
        """A deliberately deep DAG exercises many levels and slot reuse."""
        netlist = random_netlist(6, 120, seed=9, lut_widths=(2, 3))
        compiled = compile_netlist(netlist)
        assert compiled.n_groups >= 10
        X = rng.integers(0, 2, size=(150, 6), dtype=np.uint8)
        np.testing.assert_array_equal(
            compiled.predict_batch(X), netlist.evaluate_outputs(X)
        )

    def test_exhaustive_small_netlist(self):
        """All 2**10 input combinations of a small netlist, checked exactly."""
        netlist = random_netlist(10, 25, seed=4)
        compiled = compile_netlist(netlist)
        X = np.array(
            [[(i >> b) & 1 for b in range(10)] for i in range(1024)], dtype=np.uint8
        )
        np.testing.assert_array_equal(
            compiled.predict_batch(X), netlist.evaluate_outputs(X)
        )

    def test_native_backend_exhaustive(self):
        """The generated-C backend over the same exhaustive input space.

        The deep fuzz lives in ``test_native_backend``; this is the
        equivalence suite's cross-check that ``backend="native"`` sits
        behind the same contract as the NumPy engine.
        """
        from repro.engine.native import toolchain_available

        if not toolchain_available():
            pytest.skip("no C compiler on this host")
        netlist = random_netlist(10, 25, seed=4)
        native = compile_netlist(netlist, backend="native")
        X = np.array(
            [[(i >> b) & 1 for b in range(10)] for i in range(1024)], dtype=np.uint8
        )
        np.testing.assert_array_equal(
            native.predict_batch(X), netlist.evaluate_outputs(X)
        )


def _train_small_poetbin(seed=0):
    rng = as_rng(seed)
    n, n_features, n_classes, per_class = 400, 48, 3, 2
    X = (rng.random((n, n_features)) < 0.5).astype(np.uint8)
    n_intermediate = n_classes * per_class
    targets = np.empty((n, n_intermediate), dtype=np.uint8)
    for j in range(n_intermediate):
        support = rng.choice(n_features, size=5, replace=False)
        w = rng.normal(size=5)
        targets[:, j] = (X[:, support] @ w - w.sum() / 2 >= 0).astype(np.uint8)
    block = targets.reshape(n, n_classes, per_class).sum(axis=2).astype(float)
    y = np.argmax(block + rng.normal(scale=0.05, size=block.shape), axis=1)
    clf = PoETBiNClassifier(
        n_classes=n_classes,
        n_inputs=4,
        n_levels=1,
        branching=(3,),
        intermediate_per_class=per_class,
        output_epochs=3,
        seed=0,
    ).fit(X, targets, y)
    return clf, X, targets, y


class TestClassifierFastPaths:
    @pytest.fixture(scope="class")
    def trained(self):
        return _train_small_poetbin()

    def test_poetbin_predict_batch_matches_predict(self, trained):
        clf, X, _targets, _y = trained
        np.testing.assert_array_equal(clf.predict_batch(X), clf.predict(X))

    def test_poetbin_chunked_matches(self, trained):
        clf, X, _targets, _y = trained
        np.testing.assert_array_equal(
            clf.predict_batch(X, batch_size=64), clf.predict(X)
        )

    def test_poetbin_intermediate_batch_matches(self, trained):
        clf, X, _targets, _y = trained
        np.testing.assert_array_equal(
            clf.predict_intermediate_batch(X), clf.predict_intermediate(X)
        )

    def test_poetbin_engine_is_cached(self, trained):
        clf, _X, _targets, _y = trained
        assert clf.compiled_netlist() is clf.compiled_netlist()

    def test_poetbin_native_backend_matches(self, trained):
        from repro.engine.native import toolchain_available

        if not toolchain_available():
            pytest.skip("no C compiler on this host")
        clf, X, _targets, _y = trained
        np.testing.assert_array_equal(
            clf.predict_batch(X, engine_backend="native"), clf.predict(X)
        )
        # per-backend engine caches are independent and both sticky
        assert clf.compiled_netlist("native") is clf.compiled_netlist("native")
        assert clf.compiled_netlist("native") is not clf.compiled_netlist()
        assert clf.compiled_netlist("native").backend == "native"

    def test_rinc_predict_batch_matches_predict(self, trained):
        clf, X, targets, _y = trained
        module = RINCClassifier(n_inputs=4, n_levels=1, branching=(2,))
        module.fit(X, targets[:, 0])
        np.testing.assert_array_equal(module.predict_batch(X), module.predict(X))
        np.testing.assert_array_equal(
            module.predict_batch(X, batch_size=33), module.predict(X)
        )

    def test_output_layer_predict_batch(self, trained):
        clf, X, _targets, _y = trained
        bits = clf.predict_intermediate(X)
        np.testing.assert_array_equal(
            clf.output_layer_.predict_batch(bits, batch_size=50),
            clf.output_layer_.predict(bits),
        )

    def test_unfitted_rejected(self):
        clf = PoETBiNClassifier(n_classes=2, n_inputs=4)
        with pytest.raises(RuntimeError):
            clf.predict_batch(np.zeros((1, 4), dtype=np.uint8))

    def test_packed_end_to_end_never_unpacks_intermediates(self, trained, monkeypatch):
        """The serving path must not unpack between RINC bank and read-out.

        The unpacked read-out (``output_layer_.predict`` on a 0/1 bit
        matrix) is forbidden during ``predict_batch``; the labels must come
        from the popcount-based packed scorer and still match the reference
        path exactly.
        """
        clf, X, _targets, _y = trained
        expected = clf.predict(X)

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("packed serving fell back to the unpacked read-out")

        monkeypatch.setattr(clf.output_layer_, "predict", forbidden)
        monkeypatch.setattr(clf.output_layer_, "decision_scores", forbidden)
        np.testing.assert_array_equal(clf.predict_batch(X), expected)
        np.testing.assert_array_equal(
            clf.predict_batch(X, batch_size=77), expected
        )

    def test_sharded_predict_batch_matches(self, trained):
        clf, X, _targets, _y = trained
        np.testing.assert_array_equal(
            clf.predict_batch(X, n_workers=2), clf.predict(X)
        )
        np.testing.assert_array_equal(
            clf.predict_intermediate_batch(X, n_workers=2),
            clf.predict_intermediate(X),
        )
        clf._close_sharded()

    def test_rinc_sharded_predict_batch_matches(self, trained):
        clf, X, targets, _y = trained
        module = RINCClassifier(n_inputs=4, n_levels=1, branching=(2,))
        module.fit(X, targets[:, 0])
        np.testing.assert_array_equal(
            module.predict_batch(X, n_workers=2), module.predict(X)
        )
        # serial and sharded engines are cached side by side — no churn
        np.testing.assert_array_equal(module.predict_batch(X), module.predict(X))
        assert len(module._compiled_) == 2
        for engine in module._compiled_.values():
            if hasattr(engine, "close"):
                engine.close()
