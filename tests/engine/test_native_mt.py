"""The tier-2 native runtime: word-shard threading, vector codegen, autotune.

Splits from ``test_native_backend`` (which covers the tier-1 scalar
engine): everything here exercises the multithreaded/SIMD surface added
on top of it — ragged shard math across thread counts, the unrolled
source structure, the per-netlist autotune records, the ``native-mt``
backend plumbing through ``compile_netlist`` and the worker pool, and
the oversubscription rules between pool processes and engine threads.

The correctness tests run on any host with a C toolchain regardless of
core count — with one core the shards simply queue on the shared
executor, and bit-exactness must hold all the same.
"""

import json
import os

import numpy as np
import pytest

from repro.engine import (
    CompiledNetlist,
    MTConfig,
    NativeCompiledNetlist,
    ShardedEngine,
    WorkerPool,
    autotune_config,
    compile_netlist,
    pack_bits,
    random_netlist,
)
from repro.engine import native as native_mod
from repro.engine.native import (
    default_thread_count,
    generate_c_source,
    toolchain_available,
)
from repro.engine.parallel import _build_engine
from repro.utils.rng import as_rng

needs_cc = pytest.mark.skipif(
    not toolchain_available(), reason="no C compiler on this host"
)


def _program(seed=0, n_primary=24, n_nodes=50):
    netlist = random_netlist(n_primary, n_nodes, seed=seed)
    return netlist, compile_netlist(netlist)


# ------------------------------------------------------------- shard math
@needs_cc
class TestWordShardMath:
    """Ragged splits: every (threads, words, samples) shape stays exact."""

    @pytest.mark.parametrize("threads", [1, 2, 7])
    def test_bit_exact_across_thread_counts(self, threads):
        netlist, program = _program(seed=31)
        numpy_engine = program
        engine = NativeCompiledNetlist(
            program, threads=threads, min_words_per_thread=1
        )
        rng = as_rng(32)
        # n_samples % 64 != 0 (ragged tail word), n_words % threads != 0
        # (uneven shards), and the 1-word batch that must not split at all
        for n_samples in (1, 63, 64, 65, 7 * 64 + 13, 1024):
            X = rng.integers(0, 2, size=(n_samples, 24), dtype=np.uint8)
            packed = pack_bits(X)
            np.testing.assert_array_equal(
                engine.run_packed(packed), numpy_engine.run_packed(packed)
            )

    def test_more_threads_than_words(self):
        """threads > n_words: empty shards are skipped, not submitted."""
        _, program = _program(seed=33, n_primary=12, n_nodes=20)
        engine = NativeCompiledNetlist(
            program, threads=7, min_words_per_thread=1
        )
        packed = as_rng(34).integers(
            0, np.iinfo(np.uint64).max, size=(12, 3), dtype=np.uint64,
            endpoint=True,
        )
        reference = NativeCompiledNetlist(program).run_packed(packed)
        np.testing.assert_array_equal(engine.run_packed(packed), reference)

    def test_small_batches_stay_single_threaded(self, monkeypatch):
        """Below the words-per-thread grain the executor is never touched."""
        _, program = _program(seed=35, n_primary=8, n_nodes=15)
        engine = NativeCompiledNetlist(
            program, threads=4, min_words_per_thread=32
        )

        def banned():
            raise AssertionError("executor used for a sub-grain batch")

        monkeypatch.setattr(native_mod, "_shared_executor", banned)
        packed = np.zeros((8, 63), dtype=np.uint64)  # 63 // 32 == 1 shard
        engine.run_packed(packed)  # must run inline on the calling thread
        monkeypatch.undo()
        packed = np.zeros((8, 64), dtype=np.uint64)  # 2 shards: may split
        engine.run_packed(packed)

    def test_empty_batch_with_threads(self):
        _, program = _program(seed=36, n_primary=8, n_nodes=10)
        engine = NativeCompiledNetlist(
            program, threads=4, min_words_per_thread=1
        )
        out = engine.run_packed(np.zeros((8, 0), dtype=np.uint64))
        assert out.shape == (engine.n_outputs, 0)

    def test_validation(self):
        _, program = _program(seed=37, n_primary=8, n_nodes=10)
        with pytest.raises(ValueError, match="threads"):
            NativeCompiledNetlist(program, threads=0)
        with pytest.raises(ValueError, match="min_words_per_thread"):
            NativeCompiledNetlist(program, min_words_per_thread=0)


# --------------------------------------------------------- vector codegen
class TestVectorCodegen:
    def test_unrolled_source_structure(self):
        _, program = _program(seed=41, n_primary=10, n_nodes=20)
        source = generate_c_source(program, unroll=4)
        # a 4-lane width next to the scalar tail driver, both restrict-ed
        assert "vector_size(32)" in source
        assert "typedef uint64_t w4" in source
        assert "typedef uint64_t w1;" in source
        assert "run_word_w4" in source
        assert "run_word_w1" in source
        assert "restrict" in source
        # the exported range entry point the thread shards call
        assert "void run_range(" in source

    def test_scalar_source_has_no_vector_types(self):
        _, program = _program(seed=41, n_primary=10, n_nodes=20)
        source = generate_c_source(program, unroll=1)
        assert "vector_size" not in source
        assert "void run_range(" in source  # exported at every unroll

    def test_unroll_validation(self):
        _, program = _program(seed=41, n_primary=10, n_nodes=20)
        with pytest.raises(ValueError, match="unroll"):
            generate_c_source(program, unroll=0)

    @needs_cc
    @pytest.mark.parametrize("unroll", [2, 4, 8])
    def test_unrolled_builds_are_bit_exact(self, unroll):
        netlist, program = _program(seed=42)
        engine = NativeCompiledNetlist(
            program, unroll=unroll, opt_tier="fast"
        )
        rng = as_rng(43)
        for n_samples in (1, 65, 64 * unroll + 7, 512):
            X = rng.integers(0, 2, size=(n_samples, 24), dtype=np.uint8)
            np.testing.assert_array_equal(
                engine.predict_batch(X), netlist.evaluate_outputs(X)
            )

    @needs_cc
    def test_unknown_opt_tier_rejected(self):
        _, program = _program(seed=44, n_primary=8, n_nodes=10)
        with pytest.raises(ValueError, match="opt_tier"):
            NativeCompiledNetlist(program, opt_tier="ludicrous")


# -------------------------------------------------------------- autotuner
@needs_cc
class TestAutotune:
    def test_record_persisted_and_reused(self, tmp_path):
        _, program = _program(seed=51, n_primary=12, n_nodes=25)
        config = autotune_config(program, cache_dir=str(tmp_path))
        assert isinstance(config, MTConfig)
        records = list(tmp_path.glob("*.tune.json"))
        assert len(records) == 1
        record = json.loads(records[0].read_text())
        assert record["threads"] == config.threads
        assert record["unroll"] == config.unroll
        assert record["opt_tier"] == config.opt_tier
        assert record["n_cpus"] == default_thread_count()
        assert record["timings_s"]  # the measurements that picked it
        # second call is a file read: the record is not rewritten
        mtime = records[0].stat().st_mtime_ns
        assert autotune_config(program, cache_dir=str(tmp_path)) == config
        assert records[0].stat().st_mtime_ns == mtime
        # force=True re-measures and rewrites
        autotune_config(program, cache_dir=str(tmp_path), force=True)
        assert records[0].stat().st_mtime_ns != mtime

    def test_stale_record_re_measured(self, tmp_path):
        """A record pinned on a different core count is not trusted."""
        _, program = _program(seed=52, n_primary=12, n_nodes=25)
        autotune_config(program, cache_dir=str(tmp_path))
        record_path = next(tmp_path.glob("*.tune.json"))
        record = json.loads(record_path.read_text())
        record["n_cpus"] = 9999
        record["threads"] = 9999
        record_path.write_text(json.dumps(record))
        config = autotune_config(program, cache_dir=str(tmp_path))
        assert config.threads != 9999
        assert json.loads(record_path.read_text())["n_cpus"] != 9999

    def test_corrupt_record_re_measured(self, tmp_path):
        _, program = _program(seed=53, n_primary=12, n_nodes=25)
        autotune_config(program, cache_dir=str(tmp_path))
        record_path = next(tmp_path.glob("*.tune.json"))
        record_path.write_text("not json{{")
        config = autotune_config(program, cache_dir=str(tmp_path))
        assert isinstance(config, MTConfig)

    def test_failed_fast_tier_falls_back_to_baseline(
        self, tmp_path, monkeypatch
    ):
        """A tier the host compiler rejects is skipped, not fatal."""
        monkeypatch.setitem(
            native_mod._OPT_TIERS, "fast", ("-this-flag-does-not-exist",)
        )
        _, program = _program(seed=54, n_primary=10, n_nodes=15)
        config = autotune_config(program, cache_dir=str(tmp_path))
        assert config == MTConfig(threads=1, unroll=1, opt_tier="base")

    def test_calibration_words_validated(self, tmp_path):
        _, program = _program(seed=55, n_primary=8, n_nodes=10)
        with pytest.raises(ValueError, match="calibration_words"):
            autotune_config(
                program, cache_dir=str(tmp_path), calibration_words=0
            )

    def test_tuned_classmethod_and_caps(self, tmp_path):
        netlist, program = _program(seed=56)
        engine = NativeCompiledNetlist.tuned(program, cache_dir=str(tmp_path))
        assert engine.backend == "native-mt"
        assert engine.tuned_config.threads >= 1
        capped = NativeCompiledNetlist.tuned(
            program, cache_dir=str(tmp_path), max_threads=1
        )
        assert capped.threads == 1
        assert capped.backend == "native-mt"  # the tier-2 label, capped or not
        X = as_rng(57).integers(0, 2, size=(200, 24), dtype=np.uint8)
        np.testing.assert_array_equal(
            engine.predict_batch(X), netlist.evaluate_outputs(X)
        )

    def test_tune_instance_method_adopts_winner(self, tmp_path):
        netlist, program = _program(seed=58)
        engine = NativeCompiledNetlist(program, cache_dir=str(tmp_path))
        assert engine.backend == "native"
        config = engine.tune()
        assert engine.backend == "native-mt"
        assert engine.tuned_config == config
        assert (engine.threads, engine.unroll, engine.opt_tier) == (
            config.threads, config.unroll, config.opt_tier,
        )
        X = as_rng(59).integers(0, 2, size=(130, 24), dtype=np.uint8)
        np.testing.assert_array_equal(
            engine.predict_batch(X), netlist.evaluate_outputs(X)
        )


# ------------------------------------------------------- backend plumbing
@needs_cc
class TestNativeMTBackend:
    def test_compile_netlist_native_mt(self):
        netlist = random_netlist(16, 30, seed=61)
        engine = compile_netlist(netlist, backend="native-mt")
        assert isinstance(engine, NativeCompiledNetlist)
        assert engine.backend == "native-mt"
        assert isinstance(engine.tuned_config, MTConfig)
        X = as_rng(62).integers(0, 2, size=(300, 16), dtype=np.uint8)
        np.testing.assert_array_equal(
            engine.predict_batch(X), netlist.evaluate_outputs(X)
        )

    def test_build_engine_parses_thread_cap(self):
        netlist = random_netlist(12, 20, seed=63)
        engine = _build_engine(netlist, "native-mt@2")
        assert isinstance(engine, NativeCompiledNetlist)
        assert engine.backend == "native-mt"
        assert engine.threads <= 2

    def test_native_mt_without_toolchain_raises(self, monkeypatch):
        from repro.engine import NativeUnavailableError

        monkeypatch.setattr(native_mod, "find_compiler", lambda: None)
        netlist = random_netlist(8, 12, seed=64)
        with pytest.raises(NativeUnavailableError):
            compile_netlist(netlist, backend="native-mt")


# --------------------------------------------------- pool composition
@needs_cc
class TestPoolComposition:
    """Processes x threads must compose without oversubscription."""

    def test_multi_worker_pool_caps_worker_threads(self):
        netlist = random_netlist(12, 25, seed=71)
        with WorkerPool(n_workers=2, backend="thread") as pool:
            model = pool.attach(None, netlist, engine_backend="native-mt")
            cap = max(1, (os.cpu_count() or 1) // 2)
            entry = pool._entry(model)
            assert entry.worker_backend == f"native-mt@{cap}"
            assert entry.engine_backend == "native-mt"
            assert pool.engine_threads(model) >= 1
            X = as_rng(72).integers(0, 2, size=(400, 12), dtype=np.uint8)
            np.testing.assert_array_equal(
                pool.evaluate_outputs(model, X), netlist.evaluate_outputs(X)
            )

    def test_threaded_engine_skips_the_pool(self):
        """An engine that threads in-process runs on the serial path."""
        netlist = random_netlist(10, 20, seed=73)
        with WorkerPool(n_workers=2, backend="thread") as pool:
            model = pool.attach(None, netlist, engine_backend="native-mt")
            entry = pool._entry(model)
            entry.serial.threads = 4  # force the heuristic regardless of host
            assert pool._prefer_in_process(entry)
            entry.serial.threads = 1
            assert not pool._prefer_in_process(entry)

    def test_prefer_threads_false_forces_pool_sharding(self):
        netlist = random_netlist(10, 20, seed=74)
        with WorkerPool(
            n_workers=2, backend="thread", prefer_threads=False
        ) as pool:
            model = pool.attach(None, netlist, engine_backend="native-mt")
            entry = pool._entry(model)
            entry.serial.threads = 4
            assert not pool._prefer_in_process(entry)
            # and the pool path stays bit-exact for such a model
            X = as_rng(75).integers(0, 2, size=(600, 10), dtype=np.uint8)
            np.testing.assert_array_equal(
                pool.evaluate_outputs(model, X), netlist.evaluate_outputs(X)
            )

    def test_sharded_engine_forwards_and_reports(self):
        netlist = random_netlist(10, 18, seed=76)
        with ShardedEngine(
            netlist,
            n_workers=2,
            backend="thread",
            engine_backend="native-mt",
            prefer_threads=True,
        ) as engine:
            assert engine.engine_backend == "native-mt"
            assert engine.engine_threads >= 1
            assert engine.pool.prefer_threads is True
            X = as_rng(77).integers(0, 2, size=(150, 10), dtype=np.uint8)
            np.testing.assert_array_equal(
                engine.evaluate_outputs(X), netlist.evaluate_outputs(X)
            )

    def test_numpy_models_unaffected_by_heuristic(self):
        """The heuristic only triggers on engines that expose threads > 1."""
        netlist = random_netlist(10, 18, seed=78)
        with WorkerPool(n_workers=2, backend="thread") as pool:
            model = pool.attach(None, netlist, engine_backend="numpy")
            assert not pool._prefer_in_process(pool._entry(model))
            assert pool.engine_threads(model) == 1
