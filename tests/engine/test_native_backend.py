"""The generated-C backend: bit-exactness, caching, and toolchain fallback.

The fuzz half mirrors ``test_equivalence``: random DAGs across every LUT
width (including the mux-group lowering via ``max_lut_inputs`` and the
constant/arity-0 cases), native vs NumPy vs the naive simulator, ragged
batch tails included.  The fallback half forces the no-toolchain path:
``backend="auto"`` must degrade to the NumPy engine silently and
``backend="native"`` must raise the typed error.
"""

import numpy as np
import pytest

from repro.core.netlist import LUTNetlist, primary_input
from repro.engine import (
    CompiledNetlist,
    NativeCompiledNetlist,
    NativeUnavailableError,
    compile_netlist,
    pack_bits,
    random_netlist,
)
from repro.engine import native as native_mod
from repro.engine.native import (
    build_shared_object,
    find_compiler,
    generate_c_source,
    toolchain_available,
)
from repro.utils.rng import as_rng

needs_cc = pytest.mark.skipif(
    not toolchain_available(), reason="no C compiler on this host"
)


@needs_cc
class TestNativeEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_dags_three_way(self, seed):
        """native == numpy == naive on random DAGs, widths 2..8."""
        rng = as_rng(7000 + seed)
        n_primary = int(rng.integers(4, 40))
        n_nodes = int(rng.integers(1, 90))
        netlist = random_netlist(
            n_primary, n_nodes, seed=seed, lut_widths=(2, 3, 4, 5, 6, 7, 8)
        )
        numpy_engine = compile_netlist(netlist)
        native_engine = compile_netlist(netlist, backend="native")
        assert isinstance(native_engine, NativeCompiledNetlist)
        n_samples = int(rng.integers(1, 260))
        X = rng.integers(0, 2, size=(n_samples, n_primary), dtype=np.uint8)
        reference = netlist.evaluate_outputs(X)
        np.testing.assert_array_equal(numpy_engine.predict_batch(X), reference)
        np.testing.assert_array_equal(native_engine.predict_batch(X), reference)

    def test_mux_decomposed_program(self):
        """Wide LUTs through the P=4 fabric: the mux-group statement path."""
        netlist = random_netlist(24, 60, seed=11, lut_widths=(6, 7, 8))
        native_engine = compile_netlist(
            netlist, backend="native", max_lut_inputs=4
        )
        assert native_engine.program.n_groups > 0
        rng = as_rng(12)
        for n_samples in (1, 63, 64, 65, 200):
            X = rng.integers(0, 2, size=(n_samples, 24), dtype=np.uint8)
            np.testing.assert_array_equal(
                native_engine.predict_batch(X), netlist.evaluate_outputs(X)
            )

    def test_constant_and_narrow_luts(self):
        """Arity-0 (constant broadcast) and arity-1 nodes survive folding."""
        netlist = LUTNetlist(n_primary_inputs=2)
        netlist.add_node(
            name="const1", kind="mat", input_signals=[],
            table=np.array([1], dtype=np.uint8),
        )
        netlist.add_node(
            name="const0", kind="mat", input_signals=[],
            table=np.array([0], dtype=np.uint8),
        )
        netlist.add_node(
            name="inv", kind="mat",
            input_signals=[primary_input(0)],
            table=np.array([1, 0], dtype=np.uint8),
        )
        netlist.add_node(
            name="mix", kind="mat",
            input_signals=["const1", "inv", primary_input(1)],
            table=np.array([0, 1, 1, 0, 1, 0, 0, 1], dtype=np.uint8),
        )
        netlist.output_signals = ["const1", "const0", "inv", "mix"]
        # passes=() keeps the constants in the program instead of folding
        # them away before lowering — the codegen must broadcast them
        native_engine = compile_netlist(netlist, backend="native", passes=())
        X = as_rng(3).integers(0, 2, size=(130, 2), dtype=np.uint8)
        np.testing.assert_array_equal(
            native_engine.predict_batch(X), netlist.evaluate_outputs(X)
        )

    def test_ragged_batch_sizes_one_engine(self):
        """One engine instance across growing/shrinking batches stays exact."""
        netlist = random_netlist(16, 40, seed=21)
        native_engine = compile_netlist(netlist, backend="native")
        numpy_engine = compile_netlist(netlist)
        rng = as_rng(22)
        for n_samples in (1, 64, 5, 500, 65, 1, 128):
            X = rng.integers(0, 2, size=(n_samples, 16), dtype=np.uint8)
            packed = pack_bits(X)
            np.testing.assert_array_equal(
                native_engine.run_packed(packed),
                numpy_engine.run_packed(packed),
            )

    def test_empty_word_block(self):
        netlist = random_netlist(8, 10, seed=5)
        native_engine = compile_netlist(netlist, backend="native")
        empty = np.zeros((8, 0), dtype=np.uint64)
        out = native_engine.run_packed(empty)
        assert out.shape == (native_engine.n_outputs, 0)

    def test_shared_object_cached_by_digest(self, tmp_path):
        """Same program twice: the second build is a file-cache hit."""
        netlist = random_netlist(10, 12, seed=9)
        program = compile_netlist(netlist)
        assert isinstance(program, CompiledNetlist)
        first = NativeCompiledNetlist(program, cache_dir=str(tmp_path))
        so_mtime = (tmp_path / f"{first.digest}.so").stat().st_mtime_ns
        second = NativeCompiledNetlist(program, cache_dir=str(tmp_path))
        assert second.digest == first.digest
        assert (tmp_path / f"{first.digest}.so").stat().st_mtime_ns == so_mtime
        # and the source is kept next to the object for debugging
        assert (tmp_path / f"{first.digest}.c").exists()

    def test_digest_covers_source(self, tmp_path):
        a = generate_c_source(compile_netlist(random_netlist(8, 9, seed=1)))
        b = generate_c_source(compile_netlist(random_netlist(8, 9, seed=2)))
        assert a != b
        da, _ = build_shared_object(a, cache_dir=str(tmp_path))
        db, _ = build_shared_object(b, cache_dir=str(tmp_path))
        assert da != db


@needs_cc
class TestConcurrentBuilders:
    def test_racing_processes_compile_once(self, tmp_path):
        """Two processes building the same digest: exactly one compiler
        run, both get a working object, no corruption.

        Each child process builds the same source through a $CC wrapper
        script that logs its invocation (O_APPEND, so concurrent writers
        never interleave) before delegating to the real compiler.  The
        children rendezvous on a barrier so both reach
        ``build_shared_object`` with the cache cold — without the
        ``<digest>.lock`` serialisation both would invoke the compiler.
        """
        import multiprocessing as mp
        import os
        import stat

        cc = find_compiler()
        log = tmp_path / "cc_invocations.log"
        wrapper = tmp_path / "cc_wrapper.sh"
        wrapper.write_text(
            "#!/bin/sh\n"
            f'echo "invoked $$" >> {log}\n'
            f'exec {" ".join(cc)} "$@"\n'
        )
        wrapper.chmod(wrapper.stat().st_mode | stat.S_IEXEC)
        source = generate_c_source(
            compile_netlist(random_netlist(10, 30, seed=77))
        )
        cache = tmp_path / "cache"

        ctx = mp.get_context("fork")
        barrier = ctx.Barrier(2)
        results = ctx.Queue()

        def racer():
            os.environ["CC"] = str(wrapper)
            native_mod._compiler_cache = native_mod._UNSET  # re-discover $CC
            barrier.wait()
            digest, path = build_shared_object(source, cache_dir=str(cache))
            results.put((digest, os.path.getsize(path)))

        procs = [ctx.Process(target=racer) for _ in range(2)]
        for p in procs:
            p.start()
        outcomes = [results.get(timeout=60) for _ in procs]
        for p in procs:
            p.join(timeout=60)
        digests = {d for d, _ in outcomes}
        assert len(digests) == 1
        # one compile total across both processes (the loser waited on the
        # lock file and reused the winner's atomically-published object)
        assert len(log.read_text().splitlines()) == 1
        # the published object is loadable and correct in this process
        digest = digests.pop()
        so_path = str(cache / f"{digest}.so")
        run, _ = native_mod._load_entry_points(digest, so_path)
        assert run is not None

    def test_stale_tmp_files_are_cleaned(self, tmp_path):
        source = generate_c_source(
            compile_netlist(random_netlist(6, 8, seed=42))
        )
        build_shared_object(source, cache_dir=str(tmp_path))
        leftovers = [
            name for name in tmp_path.iterdir() if ".tmp" in name.name
        ]
        assert leftovers == []


class TestToolchainFallback:
    def test_auto_without_toolchain_degrades_to_numpy(self, monkeypatch):
        monkeypatch.setattr(native_mod, "find_compiler", lambda: None)
        netlist = random_netlist(8, 12, seed=3)
        engine = compile_netlist(netlist, backend="auto")
        assert isinstance(engine, CompiledNetlist)
        assert engine.backend == "numpy"
        X = as_rng(4).integers(0, 2, size=(70, 8), dtype=np.uint8)
        np.testing.assert_array_equal(
            engine.predict_batch(X), netlist.evaluate_outputs(X)
        )

    def test_native_without_toolchain_raises_typed_error(self, monkeypatch):
        monkeypatch.setattr(native_mod, "find_compiler", lambda: None)
        netlist = random_netlist(8, 12, seed=3)
        with pytest.raises(NativeUnavailableError, match="toolchain"):
            compile_netlist(netlist, backend="native")

    def test_bad_backend_name_rejected(self):
        netlist = random_netlist(8, 12, seed=3)
        with pytest.raises(ValueError, match="backend"):
            compile_netlist(netlist, backend="fortran")

    @needs_cc
    def test_auto_with_toolchain_goes_native(self):
        netlist = random_netlist(8, 12, seed=3)
        engine = compile_netlist(netlist, backend="auto")
        assert engine.backend == "native"


@needs_cc
class TestNativeValidation:
    def test_wrong_plane_count_rejected(self):
        netlist = random_netlist(8, 10, seed=6)
        native_engine = compile_netlist(netlist, backend="native")
        with pytest.raises(ValueError, match="shape"):
            native_engine.run_packed(np.zeros((3, 2), dtype=np.uint64))

    def test_compiler_discovery_honors_cc_env(self, monkeypatch):
        cc = find_compiler()
        assert cc is not None
        monkeypatch.setenv("CC", cc[0])
        assert native_mod._discover_compiler() == [cc[0]]
        monkeypatch.setenv("CC", "/nonexistent/compiler-xyz")
        # an unusable $CC falls through to PATH discovery, not a crash
        assert native_mod._discover_compiler() is not None
