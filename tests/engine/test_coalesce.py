"""Tests for the pack/scatter pair coalesce_batches / split_batches."""

import numpy as np
import pytest

from repro.engine import coalesce_batches, split_batches


class TestCoalesce:
    def test_round_trip_preserves_chunks(self, rng):
        chunks = [
            rng.integers(0, 2, size=(k, 8)).astype(np.uint8)
            for k in (3, 1, 7, 2)
        ]
        X, bounds = coalesce_batches(chunks)
        assert X.shape == (13, 8)
        assert bounds == [(0, 3), (3, 4), (4, 11), (11, 13)]
        for chunk, part in zip(chunks, split_batches(X, bounds)):
            np.testing.assert_array_equal(part, chunk)

    def test_zero_row_chunks_keep_their_position(self, rng):
        chunks = [
            rng.integers(0, 2, size=(2, 4)).astype(np.uint8),
            np.empty((0, 4), dtype=np.uint8),
            rng.integers(0, 2, size=(1, 4)).astype(np.uint8),
        ]
        X, bounds = coalesce_batches(chunks)
        parts = split_batches(X, bounds)
        assert parts[1].shape == (0, 4)
        np.testing.assert_array_equal(parts[2], chunks[2])

    def test_no_chunks_rejected(self):
        with pytest.raises(ValueError, match="at least one chunk"):
            coalesce_batches([])

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal widths"):
            coalesce_batches([np.zeros((2, 4)), np.zeros((2, 5))])

    def test_non_2d_chunk_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            coalesce_batches([np.zeros(4)])


class TestSplit:
    def test_trailing_shape_preserved(self):
        scores = np.arange(24, dtype=np.float64).reshape(6, 4)
        parts = split_batches(scores, [(0, 2), (2, 6)])
        assert parts[0].shape == (2, 4)
        assert parts[1].shape == (4, 4)
        np.testing.assert_array_equal(np.concatenate(parts), scores)

    def test_one_dimensional_labels(self):
        labels = np.arange(5)
        parts = split_batches(labels, [(0, 1), (1, 5)])
        assert [p.tolist() for p in parts] == [[0], [1, 2, 3, 4]]

    def test_row_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            split_batches(np.arange(3), [(0, 2), (2, 5)])
