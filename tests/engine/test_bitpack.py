"""Round-trip and layout tests for the uint64 bit packer."""

import numpy as np
import pytest

from repro.engine import WORD_BITS, n_words, pack_bits, unpack_bits


class TestNWords:
    def test_exact_multiples(self):
        assert n_words(0) == 0
        assert n_words(64) == 1
        assert n_words(128) == 2

    def test_ragged(self):
        assert n_words(1) == 1
        assert n_words(63) == 1
        assert n_words(65) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            n_words(-1)


class TestLayout:
    def test_word_bits_is_64(self):
        assert WORD_BITS == 64

    def test_shape(self):
        packed = pack_bits(np.zeros((130, 5), dtype=np.uint8))
        assert packed.shape == (5, 3)
        assert packed.dtype == np.uint64

    def test_sample_bit_position(self):
        """Sample s lands at bit s % 64 of word s // 64 (little-endian)."""
        bits = np.zeros((70, 2), dtype=np.uint8)
        bits[3, 0] = 1
        bits[65, 1] = 1
        packed = pack_bits(bits)
        assert packed[0, 0] == np.uint64(1) << np.uint64(3)
        assert packed[0, 1] == 0
        assert packed[1, 0] == 0
        assert packed[1, 1] == np.uint64(1) << np.uint64(1)

    def test_padding_bits_are_zero(self):
        packed = pack_bits(np.ones((3, 1), dtype=np.uint8))
        assert packed[0, 0] == np.uint64(0b111)


class TestRoundTrip:
    @pytest.mark.parametrize("n_samples", [1, 2, 63, 64, 65, 100, 128, 200])
    @pytest.mark.parametrize("n_signals", [1, 3, 17])
    def test_random_matrices(self, rng, n_samples, n_signals):
        bits = rng.integers(0, 2, size=(n_samples, n_signals), dtype=np.uint8)
        restored = unpack_bits(pack_bits(bits), n_samples)
        assert restored.dtype == np.uint8
        np.testing.assert_array_equal(restored, bits)

    def test_empty_batch(self):
        bits = np.zeros((0, 4), dtype=np.uint8)
        packed = pack_bits(bits)
        assert packed.shape == (4, 0)
        np.testing.assert_array_equal(unpack_bits(packed, 0), bits)

    def test_no_signals(self):
        bits = np.zeros((10, 0), dtype=np.uint8)
        packed = pack_bits(bits)
        assert packed.shape == (0, 1)
        np.testing.assert_array_equal(unpack_bits(packed, 10), bits)

    def test_single_sample(self, rng):
        bits = rng.integers(0, 2, size=(1, 9), dtype=np.uint8)
        np.testing.assert_array_equal(unpack_bits(pack_bits(bits), 1), bits)

    def test_truncating_unpack(self, rng):
        """Unpacking fewer samples than packed drops the tail."""
        bits = rng.integers(0, 2, size=(100, 3), dtype=np.uint8)
        np.testing.assert_array_equal(unpack_bits(pack_bits(bits), 40), bits[:40])

    def test_non_uint8_input(self):
        bits = [[0, 1], [1, 0], [1, 1]]
        np.testing.assert_array_equal(unpack_bits(pack_bits(bits), 3), bits)


class TestValidation:
    def test_pack_rejects_non_binary(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([[0, 2]]))

    def test_pack_rejects_1d(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([0, 1]))

    def test_unpack_rejects_1d(self):
        with pytest.raises(ValueError):
            unpack_bits(np.zeros(3, dtype=np.uint64), 1)

    def test_unpack_rejects_overflow(self):
        packed = pack_bits(np.zeros((64, 2), dtype=np.uint8))
        with pytest.raises(ValueError):
            unpack_bits(packed, 65)

    def test_unpack_rejects_negative_samples(self):
        with pytest.raises(ValueError):
            unpack_bits(np.zeros((2, 1), dtype=np.uint64), -1)


def _poison_padding(packed, k):
    """Set every padding bit past sample ``k`` in the last word to 1."""
    poisoned = packed.copy()
    tail = k - (packed.shape[1] - 1) * WORD_BITS
    if 0 < tail < WORD_BITS:
        poisoned[:, -1] |= ~np.uint64(0) << np.uint64(tail)
    return poisoned


class TestMaskPadding:
    def test_no_padding_returns_input_unchanged(self):
        from repro.engine import mask_padding

        packed = pack_bits(np.ones((64, 3), dtype=np.uint8))
        assert mask_padding(packed, 64) is packed  # no copy when clean

    def test_poisoned_tail_is_zeroed(self):
        from repro.engine import mask_padding

        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, size=(70, 5), dtype=np.uint8)
        packed = _poison_padding(pack_bits(bits), 70)
        masked = mask_padding(packed, 70)
        np.testing.assert_array_equal(masked, pack_bits(bits))
        np.testing.assert_array_equal(unpack_bits(masked, 70), bits)

    def test_surplus_whole_words_are_zeroed(self):
        from repro.engine import mask_padding

        bits = np.ones((5, 3), dtype=np.uint8)
        packed = pack_bits(bits)  # (3, 1)
        surplus = np.concatenate(
            [packed, np.full((3, 2), ~np.uint64(0))], axis=1
        )
        masked = mask_padding(surplus, 5)
        np.testing.assert_array_equal(masked[:, 1:], 0)
        np.testing.assert_array_equal(unpack_bits(masked[:, :1], 5), bits)


class TestConcatPacked:
    def test_matches_pack_of_concatenation(self):
        """concat_packed(pack(a), pack(b), ...) == pack(concat(a, b, ...))."""
        from repro.engine import concat_packed

        rng = np.random.default_rng(2)
        for trial in range(25):
            n_signals = int(rng.integers(1, 9))
            ks = [int(rng.integers(1, 130)) for _ in range(rng.integers(1, 6))]
            rows = [
                rng.integers(0, 2, size=(k, n_signals), dtype=np.uint8)
                for k in ks
            ]
            merged = concat_packed(
                [_poison_padding(pack_bits(r), k) for r, k in zip(rows, ks)],
                ks,
            )
            np.testing.assert_array_equal(
                merged,
                pack_bits(np.concatenate(rows, axis=0)),
                err_msg=f"trial {trial}, ks={ks}",
            )

    def test_word_aligned_fast_path(self):
        from repro.engine import concat_packed

        rng = np.random.default_rng(3)
        rows = [
            rng.integers(0, 2, size=(64, 4), dtype=np.uint8),
            rng.integers(0, 2, size=(128, 4), dtype=np.uint8),
            rng.integers(0, 2, size=(7, 4), dtype=np.uint8),
        ]
        merged = concat_packed([pack_bits(r) for r in rows], [64, 128, 7])
        np.testing.assert_array_equal(
            merged, pack_bits(np.concatenate(rows, axis=0))
        )

    def test_single_chunk(self):
        from repro.engine import concat_packed

        bits = np.ones((5, 2), dtype=np.uint8)
        merged = concat_packed([_poison_padding(pack_bits(bits), 5)], [5])
        np.testing.assert_array_equal(merged, pack_bits(bits))

    def test_validation(self):
        from repro.engine import concat_packed

        a = pack_bits(np.ones((3, 2), dtype=np.uint8))
        b = pack_bits(np.ones((3, 4), dtype=np.uint8))
        with pytest.raises(ValueError):
            concat_packed([], [])
        with pytest.raises(ValueError):
            concat_packed([a], [3, 3])  # count mismatch
        with pytest.raises(ValueError):
            concat_packed([a, b], [3, 3])  # signal-count mismatch
        with pytest.raises(ValueError):
            concat_packed([a], [200])  # too few words for the claim
