"""Unit tests of the compiled program: structure, slots, and error paths."""

import numpy as np
import pytest

from repro.core import LUTNetlist
from repro.engine import CompiledNetlist, compile_netlist, pack_bits, random_netlist


def _xor_and_netlist():
    netlist = LUTNetlist(n_primary_inputs=3)
    netlist.add_node("xor01", "rinc0", ["in0", "in1"], np.array([0, 1, 1, 0]))
    netlist.add_node("and2", "mat", ["xor01", "in2"], np.array([0, 0, 0, 1]))
    netlist.mark_output("and2")
    return netlist


class TestCompilation:
    def test_known_function(self):
        compiled = compile_netlist(_xor_and_netlist())
        X = np.array([[0, 0, 1], [0, 1, 1], [1, 0, 0], [1, 1, 1]], dtype=np.uint8)
        np.testing.assert_array_equal(compiled.predict_batch(X)[:, 0], [0, 1, 0, 0])

    def test_statistics_raw_lowering(self):
        """``passes=()`` lowers the netlist structure unchanged."""
        compiled = compile_netlist(_xor_and_netlist(), passes=())
        assert compiled.n_nodes == 2
        assert compiled.n_groups == 2
        assert compiled.n_primary_inputs == 3
        assert compiled.n_outputs == 1

    def test_default_pipeline_fuses_shared_support_chain(self):
        """The pipeline collapses a chain whose links share their support."""
        netlist = LUTNetlist(n_primary_inputs=2)
        netlist.add_node("xor01", "rinc0", ["in0", "in1"], np.array([0, 1, 1, 0]))
        netlist.add_node("and01", "mat", ["xor01", "in0"], np.array([0, 0, 0, 1]))
        netlist.mark_output("and01")
        compiled = compile_netlist(netlist)
        assert compiled.n_nodes == 1
        assert compiled.n_groups == 1
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.uint8)
        np.testing.assert_array_equal(
            compiled.predict_batch(X), netlist.evaluate_outputs(X)
        )

    def test_default_pipeline_keeps_cost_neutral_pairs(self):
        """Disjoint 2-input LUTs are not fused (equal cost, deeper cascade)."""
        compiled = compile_netlist(_xor_and_netlist())
        assert compiled.n_nodes == 2
        X = np.array([[0, 0, 1], [0, 1, 1], [1, 0, 0], [1, 1, 1]], dtype=np.uint8)
        np.testing.assert_array_equal(compiled.predict_batch(X)[:, 0], [0, 1, 0, 0])

    def test_from_netlist_equals_helper(self):
        netlist = _xor_and_netlist()
        assert isinstance(CompiledNetlist.from_netlist(netlist), CompiledNetlist)

    def test_no_outputs_rejected(self):
        netlist = LUTNetlist(n_primary_inputs=2)
        netlist.add_node("a", "rinc0", ["in0"], np.array([0, 1]))
        with pytest.raises(ValueError):
            compile_netlist(netlist)

    def test_same_arity_nodes_grouped(self):
        """All width-P LUTs of one level collapse into a single step."""
        netlist = LUTNetlist(n_primary_inputs=8)
        for i in range(20):
            netlist.add_node(
                f"n{i}", "rinc0", ["in0", f"in{i % 8}" if i % 8 else "in1"],
                np.array([0, 1, 1, 0]),
            )
            netlist.mark_output(f"n{i}")
        compiled = compile_netlist(netlist)
        assert compiled.n_groups == 1

    def test_slot_reuse_bounds_working_set(self):
        """A deep chain needs far fewer slots than inputs + nodes."""
        netlist = LUTNetlist(n_primary_inputs=2)
        previous = "in0"
        for i in range(100):
            netlist.add_node(f"c{i}", "rinc0", [previous, "in1"], np.array([0, 1, 1, 0]))
            previous = f"c{i}"
        netlist.mark_output(previous)
        compiled = compile_netlist(netlist)
        assert compiled.n_slots < 10  # not 102: dead chain links are recycled

    def test_output_slots_never_recycled(self):
        """Every declared output must survive to the end of the program."""
        netlist = random_netlist(8, 60, seed=5, n_outputs=10)
        compiled = compile_netlist(netlist)
        rng = np.random.default_rng(0)
        X = rng.integers(0, 2, size=(100, 8), dtype=np.uint8)
        np.testing.assert_array_equal(
            compiled.predict_batch(X), netlist.evaluate_outputs(X)
        )


class TestEvaluation:
    def test_primary_input_passthrough_output(self):
        netlist = LUTNetlist(n_primary_inputs=2)
        netlist.add_node("a", "rinc0", ["in0"], np.array([0, 1]))
        netlist.mark_output("a")
        netlist.mark_output("in1")
        compiled = compile_netlist(netlist)
        X = np.array([[0, 1], [1, 0]], dtype=np.uint8)
        np.testing.assert_array_equal(compiled.predict_batch(X), [[0, 1], [1, 0]])

    def test_netlist_with_no_nodes(self):
        """Pure pass-through netlists (outputs are primary inputs) compile."""
        netlist = LUTNetlist(n_primary_inputs=3)
        netlist.mark_output("in2")
        netlist.mark_output("in0")
        compiled = compile_netlist(netlist)
        assert compiled.n_groups == 0
        X = np.array([[1, 0, 0], [0, 0, 1]], dtype=np.uint8)
        np.testing.assert_array_equal(compiled.predict_batch(X), [[0, 1], [1, 0]])

    def test_constant_node(self):
        """A zero-input LUT is a constant signal across the whole batch."""
        netlist = LUTNetlist(n_primary_inputs=1)
        netlist.add_node("one", "mat", [], np.array([1]))
        netlist.add_node("zero", "mat", [], np.array([0]))
        netlist.mark_output("one")
        netlist.mark_output("zero")
        compiled = compile_netlist(netlist)
        X = np.zeros((70, 1), dtype=np.uint8)
        out = compiled.predict_batch(X)
        np.testing.assert_array_equal(out[:, 0], np.ones(70, dtype=np.uint8))
        np.testing.assert_array_equal(out[:, 1], np.zeros(70, dtype=np.uint8))

    def test_inverter(self):
        """NOT gates fill padding with ones; unpack must truncate them."""
        netlist = LUTNetlist(n_primary_inputs=1)
        netlist.add_node("inv", "rinc0", ["in0"], np.array([1, 0]))
        netlist.mark_output("inv")
        compiled = compile_netlist(netlist)
        X = np.zeros((3, 1), dtype=np.uint8)
        np.testing.assert_array_equal(
            compiled.predict_batch(X)[:, 0], np.ones(3, dtype=np.uint8)
        )

    def test_empty_batch(self):
        compiled = compile_netlist(_xor_and_netlist())
        out = compiled.predict_batch(np.zeros((0, 3), dtype=np.uint8))
        assert out.shape == (0, 1)

    def test_wrong_width_rejected(self):
        compiled = compile_netlist(_xor_and_netlist())
        with pytest.raises(ValueError):
            compiled.predict_batch(np.zeros((2, 5), dtype=np.uint8))

    def test_non_binary_rejected(self):
        compiled = compile_netlist(_xor_and_netlist())
        with pytest.raises(ValueError):
            compiled.predict_batch(np.full((2, 3), 2))

    def test_run_packed_shape_rejected(self):
        compiled = compile_netlist(_xor_and_netlist())
        with pytest.raises(ValueError):
            compiled.run_packed(np.zeros((5, 1), dtype=np.uint64))

    def test_run_packed_round_trip(self, rng):
        netlist = _xor_and_netlist()
        compiled = compile_netlist(netlist)
        X = rng.integers(0, 2, size=(130, 3), dtype=np.uint8)
        packed_out = compiled.run_packed(pack_bits(X))
        assert packed_out.shape == (1, 3)
        from repro.engine import unpack_bits

        np.testing.assert_array_equal(
            unpack_bits(packed_out, 130), netlist.evaluate_outputs(X)
        )

    def test_scratch_buffers_stable_across_batch_sizes(self, rng):
        """Ragged batches reuse one grow-only scratch allocation.

        The pre-PR behaviour reallocated state and mux scratch whenever the
        word count *changed* — serving traffic alternating between big and
        small batches thrashed the allocator every request.  Now the
        buffers are cached by rounded-up capacity: shrinking batches reuse
        the existing arrays (same objects, views carved per call), and only
        a genuinely larger batch grows them.
        """
        netlist = random_netlist(16, 40, seed=31)
        compiled = compile_netlist(netlist)
        reference = compile_netlist(netlist)

        X_big = rng.integers(0, 2, size=(500, 16), dtype=np.uint8)
        compiled.run_packed(pack_bits(X_big))
        capacity, state_buf, mux_flat, mux2_buf = compiled._scratch
        assert capacity >= 8  # 500 samples = 8 words

        for n_samples in (1, 64, 500, 65, 3, 128):
            X = rng.integers(0, 2, size=(n_samples, 16), dtype=np.uint8)
            packed = pack_bits(X)
            np.testing.assert_array_equal(
                compiled.run_packed(packed), reference.run_packed(packed)
            )
            cap_now, state_now, mux_now, mux2_now = compiled._scratch
            assert cap_now == capacity
            assert state_now is state_buf
            assert mux_now is mux_flat
            assert mux2_now is mux2_buf

        # a larger batch grows the cache (never shrinks it)
        X_huge = rng.integers(0, 2, size=(4000, 16), dtype=np.uint8)
        packed = pack_bits(X_huge)
        np.testing.assert_array_equal(
            compiled.run_packed(packed), reference.run_packed(packed)
        )
        assert compiled._scratch[0] > capacity
