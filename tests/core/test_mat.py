"""Tests for the MAT (multiply-add-threshold) module."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MATModule
from repro.utils.bitops import enumerate_binary_inputs


class TestConstruction:
    def test_basic(self):
        mat = MATModule(weights=[1.0, 2.0, 0.5])
        assert mat.n_inputs == 3

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            MATModule(weights=[])

    def test_too_wide_rejected(self):
        with pytest.raises(ValueError):
            MATModule(weights=np.ones(17))

    def test_from_adaboost(self):
        mat = MATModule.from_adaboost(np.array([0.3, 0.7]))
        assert mat.threshold == 0.0
        np.testing.assert_array_equal(mat.weights, [0.3, 0.7])


class TestEvaluate:
    def test_majority_vote_equal_weights(self):
        mat = MATModule(weights=[1.0, 1.0, 1.0])
        bits = np.array([[1, 1, 0], [0, 0, 1], [1, 1, 1], [0, 0, 0]], dtype=np.uint8)
        np.testing.assert_array_equal(mat.evaluate(bits), [1, 0, 1, 0])

    def test_weighted_vote_dominant_input(self):
        mat = MATModule(weights=[5.0, 1.0, 1.0])
        bits = np.array([[1, 0, 0], [0, 1, 1]], dtype=np.uint8)
        np.testing.assert_array_equal(mat.evaluate(bits), [1, 0])

    def test_tie_resolves_to_one(self):
        mat = MATModule(weights=[1.0, 1.0])
        bits = np.array([[1, 0]], dtype=np.uint8)
        assert mat.evaluate(bits)[0] == 1

    def test_matches_adaboost_sign_rule(self, rng):
        alphas = rng.uniform(0.1, 2.0, size=5)
        mat = MATModule.from_adaboost(alphas)
        bits = (rng.random((50, 5)) < 0.5).astype(np.uint8)
        signed = 2.0 * bits - 1.0
        expected = (signed @ alphas >= 0).astype(np.uint8)
        np.testing.assert_array_equal(mat.evaluate(bits), expected)

    def test_wrong_width_rejected(self):
        mat = MATModule(weights=[1.0, 1.0])
        with pytest.raises(ValueError):
            mat.evaluate(np.zeros((2, 3), dtype=np.uint8))


class TestToLut:
    def test_lut_matches_direct_evaluation(self, rng):
        weights = rng.uniform(-1.0, 2.0, size=4)
        mat = MATModule(weights=weights, threshold=0.3)
        lut = mat.to_lut()
        combos = enumerate_binary_inputs(4)
        np.testing.assert_array_equal(lut.evaluate(combos), mat.evaluate(combos))

    def test_custom_input_indices(self):
        mat = MATModule(weights=[1.0, 1.0])
        lut = mat.to_lut(input_indices=np.array([7, 3]))
        np.testing.assert_array_equal(lut.input_indices, [7, 3])

    def test_wrong_indices_length_rejected(self):
        mat = MATModule(weights=[1.0, 1.0])
        with pytest.raises(ValueError):
            mat.to_lut(input_indices=np.array([1, 2, 3]))


class TestEffectiveInputs:
    def test_all_inputs_matter_with_equal_weights(self):
        mat = MATModule(weights=[1.0, 1.0, 1.0])
        np.testing.assert_array_equal(mat.effective_inputs(), [0, 1, 2])

    def test_negligible_weight_pruned(self):
        # the third weight is too small to ever flip the decision: the partial
        # sums of the first two inputs (+-2 +-1) are never within 1e-6 of zero
        mat = MATModule(weights=[2.0, 1.0, 1e-6])
        assert 2 not in mat.effective_inputs()

    def test_zero_weight_pruned(self):
        mat = MATModule(weights=[1.0, 0.0])
        np.testing.assert_array_equal(mat.effective_inputs(), [0])


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_mat_lut_equivalence_property(n, seed):
    """The pre-computed LUT always agrees with the arithmetic MAT decision."""
    rng = np.random.default_rng(seed)
    mat = MATModule(weights=rng.normal(size=n), threshold=float(rng.normal()))
    combos = enumerate_binary_inputs(n)
    np.testing.assert_array_equal(mat.to_lut().evaluate(combos), mat.evaluate(combos))
