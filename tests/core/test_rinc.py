"""Tests for RINC-0 and the hierarchical RINC-L classifier."""

import numpy as np
import pytest

from repro.core import RINC0, RINCClassifier
from repro.datasets import make_binary_teacher_task


@pytest.fixture(scope="module")
def teacher_task():
    return make_binary_teacher_task(
        n_train=1500, n_test=400, n_features=96, n_active=20, seed=11
    )


class TestRINC0:
    def test_fit_predict(self, teacher_task):
        module = RINC0(n_inputs=6).fit(teacher_task.X_train, teacher_task.y_train)
        preds = module.predict(teacher_task.X_test)
        assert set(np.unique(preds)) <= {0, 1}
        assert module.score(teacher_task.X_test, teacher_task.y_test) > 0.55

    def test_lut_count_is_one(self, teacher_task):
        module = RINC0(n_inputs=4).fit(teacher_task.X_train, teacher_task.y_train)
        assert module.lut_count() == 1

    def test_to_lut_matches_predictions(self, teacher_task):
        module = RINC0(n_inputs=5).fit(teacher_task.X_train, teacher_task.y_train)
        lut = module.to_lut(name="m")
        np.testing.assert_array_equal(
            lut.evaluate(teacher_task.X_test), module.predict(teacher_task.X_test)
        )

    def test_unfitted_access(self):
        module = RINC0(n_inputs=4)
        assert not module.is_fitted
        with pytest.raises(RuntimeError):
            _ = module.feature_indices


class TestRINCConstruction:
    def test_default_branching(self):
        module = RINCClassifier(n_inputs=6, n_levels=2)
        assert module.branching == (6, 6)

    def test_custom_branching(self):
        module = RINCClassifier(n_inputs=8, n_levels=2, branching=[4, 8])
        assert module.branching == (4, 8)

    def test_invalid_branching_length(self):
        with pytest.raises(ValueError):
            RINCClassifier(n_inputs=6, n_levels=2, branching=[6])

    def test_branching_exceeding_lut_width(self):
        with pytest.raises(ValueError):
            RINCClassifier(n_inputs=4, n_levels=1, branching=[5])

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            RINCClassifier(n_inputs=4, n_levels=-1)

    def test_max_input_bits(self):
        assert RINCClassifier(n_inputs=8, n_levels=2, branching=[4, 8]).max_input_bits() == 256
        assert RINCClassifier(n_inputs=6, n_levels=2).max_input_bits() == 216


class TestRINCTraining:
    def test_rinc1_improves_over_rinc0(self, teacher_task):
        rinc0 = RINCClassifier(n_inputs=6, n_levels=0).fit(
            teacher_task.X_train, teacher_task.y_train
        )
        rinc1 = RINCClassifier(n_inputs=6, n_levels=1).fit(
            teacher_task.X_train, teacher_task.y_train
        )
        assert rinc1.score(teacher_task.X_test, teacher_task.y_test) >= rinc0.score(
            teacher_task.X_test, teacher_task.y_test
        ) - 0.02

    def test_rinc2_accuracy_reasonable(self, teacher_task):
        rinc2 = RINCClassifier(n_inputs=6, n_levels=2, branching=[3, 6]).fit(
            teacher_task.X_train, teacher_task.y_train
        )
        assert rinc2.score(teacher_task.X_test, teacher_task.y_test) > 0.7

    def test_predictions_binary(self, teacher_task):
        rinc = RINCClassifier(n_inputs=5, n_levels=1).fit(
            teacher_task.X_train, teacher_task.y_train
        )
        assert set(np.unique(rinc.predict(teacher_task.X_test))) <= {0, 1}

    def test_level0_equivalent_to_rinc0(self, teacher_task):
        level0 = RINCClassifier(n_inputs=6, n_levels=0).fit(
            teacher_task.X_train, teacher_task.y_train
        )
        rinc0 = RINC0(n_inputs=6).fit(teacher_task.X_train, teacher_task.y_train)
        np.testing.assert_array_equal(
            level0.predict(teacher_task.X_test), rinc0.predict(teacher_task.X_test)
        )

    def test_unfitted_predict_rejected(self):
        with pytest.raises(RuntimeError):
            RINCClassifier(n_inputs=4, n_levels=1).predict(np.zeros((1, 8), dtype=np.uint8))

    def test_selected_features_within_range(self, teacher_task):
        rinc = RINCClassifier(n_inputs=6, n_levels=1, branching=[3]).fit(
            teacher_task.X_train, teacher_task.y_train
        )
        features = rinc.selected_features()
        assert features.min() >= 0
        assert features.max() < teacher_task.X_train.shape[1]


class TestLutCounting:
    def test_full_formula_matches_paper_example(self):
        # §4.3: a RINC-2 with P=6 needs 43 LUTs
        assert RINCClassifier.full_lut_count(6, 2) == 43
        # a RINC-1 with P=6 needs 7 LUTs
        assert RINCClassifier.full_lut_count(6, 1) == 7
        # a RINC-0 is a single LUT
        assert RINCClassifier.full_lut_count(6, 0) == 1

    def test_fitted_count_matches_formula_with_full_branching(self, teacher_task):
        rinc = RINCClassifier(n_inputs=4, n_levels=2).fit(
            teacher_task.X_train, teacher_task.y_train
        )
        assert rinc.lut_count() == RINCClassifier.full_lut_count(4, 2)

    def test_reduced_branching_count(self, teacher_task):
        rinc = RINCClassifier(n_inputs=6, n_levels=2, branching=[3, 6]).fit(
            teacher_task.X_train, teacher_task.y_train
        )
        # 3 subgroups of (6 trees + 1 MAT) + 1 outer MAT = 3*7 + 1 = 22
        assert rinc.lut_count() == 22

    def test_lut_count_requires_fit(self):
        with pytest.raises(RuntimeError):
            RINCClassifier(n_inputs=4, n_levels=1).lut_count()


class TestNetlistExport:
    def test_netlist_matches_python_predictions(self, teacher_task):
        rinc = RINCClassifier(n_inputs=5, n_levels=2, branching=[3, 4]).fit(
            teacher_task.X_train, teacher_task.y_train
        )
        netlist, signal = rinc.to_netlist(
            n_primary_inputs=teacher_task.X_train.shape[1]
        )
        netlist.mark_output(signal)
        hardware = netlist.evaluate_outputs(teacher_task.X_test)[:, 0]
        np.testing.assert_array_equal(hardware, rinc.predict(teacher_task.X_test))

    def test_netlist_lut_count_matches(self, teacher_task):
        rinc = RINCClassifier(n_inputs=4, n_levels=1).fit(
            teacher_task.X_train, teacher_task.y_train
        )
        netlist, _ = rinc.to_netlist(n_primary_inputs=teacher_task.X_train.shape[1])
        assert netlist.n_luts == rinc.lut_count()

    def test_netlist_depth_equals_levels_plus_one(self, teacher_task):
        rinc = RINCClassifier(n_inputs=4, n_levels=2, branching=[2, 3]).fit(
            teacher_task.X_train, teacher_task.y_train
        )
        netlist, signal = rinc.to_netlist(
            n_primary_inputs=teacher_task.X_train.shape[1]
        )
        netlist.mark_output(signal)
        assert netlist.logic_depth() == 3  # tree -> inner MAT -> outer MAT

    def test_netlist_requires_primary_inputs_when_new(self, teacher_task):
        rinc = RINCClassifier(n_inputs=4, n_levels=0).fit(
            teacher_task.X_train, teacher_task.y_train
        )
        with pytest.raises(ValueError):
            rinc.to_netlist()

    def test_mat_nodes_carry_weights(self, teacher_task):
        rinc = RINCClassifier(n_inputs=4, n_levels=1).fit(
            teacher_task.X_train, teacher_task.y_train
        )
        netlist, signal = rinc.to_netlist(
            n_primary_inputs=teacher_task.X_train.shape[1]
        )
        mat_node = netlist.get_node(signal)
        assert mat_node.kind == "mat"
        assert "weights" in mat_node.metadata
        assert len(mat_node.metadata["weights"]) == 4
