"""Tests for the intermediate-layer extraction helpers."""

import numpy as np
import pytest

from repro.core.intermediate import (
    binary_activations,
    extract_binary_features,
    extract_intermediate_targets,
    find_layer_indices,
)
from repro.nn import BinarySigmoid, Dense, ReLU, Sequential


@pytest.fixture
def teacher_like_model():
    return Sequential(
        [
            Dense(10, 16, seed=0),
            BinarySigmoid(),  # binary features
            Dense(16, 8, seed=1),
            ReLU(),
            Dense(8, 6, seed=2),
            BinarySigmoid(),  # intermediate layer
            Dense(6, 3, seed=3),
        ]
    )


class TestFindLayerIndices:
    def test_finds_both_binary_sigmoids(self, teacher_like_model):
        assert find_layer_indices(teacher_like_model, BinarySigmoid) == [1, 5]

    def test_empty_when_absent(self, teacher_like_model):
        from repro.nn import Dropout

        assert find_layer_indices(teacher_like_model, Dropout) == []


class TestBinaryActivations:
    def test_returns_uint8_binary(self, teacher_like_model, rng):
        X = rng.normal(size=(20, 10))
        acts = binary_activations(teacher_like_model, X, 1)
        assert acts.dtype == np.uint8
        assert set(np.unique(acts)) <= {0, 1}

    def test_rejects_non_binary_layer(self, teacher_like_model, rng):
        X = rng.normal(size=(5, 10))
        with pytest.raises(ValueError):
            binary_activations(teacher_like_model, X, 0)


class TestExtractors:
    def test_features_and_targets_shapes(self, teacher_like_model, rng):
        X = rng.normal(size=(30, 10))
        features = extract_binary_features(teacher_like_model, X)
        targets = extract_intermediate_targets(teacher_like_model, X)
        assert features.shape == (30, 16)
        assert targets.shape == (30, 6)

    def test_features_require_binary_sigmoid(self, rng):
        model = Sequential([Dense(4, 3, seed=0), ReLU()])
        with pytest.raises(ValueError):
            extract_binary_features(model, rng.normal(size=(5, 4)))

    def test_targets_require_two_binary_layers(self, rng):
        model = Sequential([Dense(4, 3, seed=0), BinarySigmoid(), Dense(3, 2, seed=1)])
        with pytest.raises(ValueError):
            extract_intermediate_targets(model, rng.normal(size=(5, 4)))

    def test_batched_extraction_consistent(self, teacher_like_model, rng):
        X = rng.normal(size=(50, 10))
        full = extract_binary_features(teacher_like_model, X, batch_size=256)
        small = extract_binary_features(teacher_like_model, X, batch_size=7)
        np.testing.assert_array_equal(full, small)
