"""Integration test: the full A1 -> A4 workflow on a small synthetic dataset."""

import numpy as np
import pytest

from repro.core import ClassifierSpec, PoETBiNWorkflow
from repro.core.workflow import PipelineAccuracies
from repro.datasets import make_synthetic_mnist
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU


def _small_feature_extractor_factory(seed=0):
    """Tiny LeNet-style extractor for 28x28x1 inputs -> 64 features."""

    def factory():
        return [
            Conv2D(1, 4, kernel_size=5, stride=2, seed=seed),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(4 * 6 * 6, 64, seed=seed + 1),
        ]

    return factory


@pytest.fixture(scope="module")
def workflow_result():
    data = make_synthetic_mnist(n_train=700, n_test=200, seed=0)
    spec = ClassifierSpec(
        n_classes=10,
        hidden_sizes=(64,),
        lut_inputs=4,
        rinc_levels=1,
        rinc_branching=(3,),
        output_bits=8,
        intermediate_per_class=3,
    )
    workflow = PoETBiNWorkflow(
        feature_extractor_factory=_small_feature_extractor_factory(),
        feature_dim=64,
        spec=spec,
        epochs=6,
        batch_size=64,
        learning_rate=0.01,
        output_epochs=15,
        seed=0,
    )
    return workflow.run(data)


class TestWorkflowRun:
    def test_accuracies_recorded(self, workflow_result):
        acc = workflow_result.accuracies
        assert isinstance(acc, PipelineAccuracies)
        assert len(acc.as_row()) == 4
        for value in acc.as_row():
            assert 0.0 <= value <= 1.0

    def test_vanilla_learns_something(self, workflow_result):
        # 10-class task, chance is 0.1; the tiny network must beat it clearly
        assert workflow_result.accuracies.vanilla > 0.3

    def test_poetbin_tracks_teacher(self, workflow_result):
        """A4 stays within a reasonable band of A3 (paper: within ~2 points)."""
        gap = workflow_result.accuracies.teacher - workflow_result.accuracies.poetbin
        assert gap < 0.3

    def test_binary_features_are_binary(self, workflow_result):
        assert set(np.unique(workflow_result.features_train)) <= {0, 1}
        assert workflow_result.features_train.shape[1] == 64

    def test_intermediate_targets_width(self, workflow_result):
        assert workflow_result.intermediate_train.shape[1] == 10 * 3

    def test_poetbin_lut_count_positive(self, workflow_result):
        assert workflow_result.poetbin.lut_count() > 0

    def test_metadata_mentions_dataset(self, workflow_result):
        assert workflow_result.metadata["dataset"] == "synthetic-mnist"


class TestSpecValidation:
    def test_invalid_hidden_sizes(self):
        with pytest.raises(ValueError):
            ClassifierSpec(n_classes=10, hidden_sizes=())
        with pytest.raises(ValueError):
            ClassifierSpec(n_classes=10, hidden_sizes=(0,))

    def test_invalid_classes(self):
        with pytest.raises(ValueError):
            ClassifierSpec(n_classes=1, hidden_sizes=(8,))

    def test_intermediate_default_uses_p(self):
        spec = ClassifierSpec(n_classes=10, hidden_sizes=(32,), lut_inputs=6)
        assert spec.n_intermediate == 60

    def test_workflow_invalid_variant(self):
        spec = ClassifierSpec(n_classes=3, hidden_sizes=(8,), lut_inputs=4)
        workflow = PoETBiNWorkflow(
            feature_extractor_factory=lambda: [Dense(4, 8, seed=0)],
            feature_dim=8,
            spec=spec,
        )
        with pytest.raises(ValueError):
            workflow.build_network("quantum")

    def test_workflow_invalid_args(self):
        spec = ClassifierSpec(n_classes=3, hidden_sizes=(8,), lut_inputs=4)
        with pytest.raises(ValueError):
            PoETBiNWorkflow(
                feature_extractor_factory=lambda: [], feature_dim=0, spec=spec
            )
        with pytest.raises(ValueError):
            PoETBiNWorkflow(
                feature_extractor_factory=lambda: [], feature_dim=8, spec=spec, epochs=0
            )
