"""Tests for the sparse quantised output layer."""

import numpy as np
import pytest

from repro.core import SparseQuantizedOutputLayer
from repro.core.output_layer import quantize_symmetric


class TestQuantizeSymmetric:
    def test_preserves_zero(self):
        np.testing.assert_array_equal(quantize_symmetric(np.zeros(4), 8), np.zeros(4))

    def test_max_value_preserved(self):
        values = np.array([-2.0, 1.0, 2.0])
        quantised = quantize_symmetric(values, 8)
        assert quantised.max() == pytest.approx(2.0)

    def test_error_bounded_by_half_step(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=100)
        for bits in (4, 8, 16):
            quantised = quantize_symmetric(values, bits)
            step = np.abs(values).max() / (2 ** (bits - 1) - 1)
            assert np.max(np.abs(values - quantised)) <= step / 2 + 1e-12

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=200)
        err4 = np.abs(values - quantize_symmetric(values, 4)).max()
        err8 = np.abs(values - quantize_symmetric(values, 8)).max()
        err16 = np.abs(values - quantize_symmetric(values, 16)).max()
        assert err16 <= err8 <= err4

    def test_rejects_single_bit(self):
        with pytest.raises(ValueError):
            quantize_symmetric(np.ones(3), 1)


def _make_intermediate_task(rng, n=600, n_classes=4, fan_in=5):
    """Intermediate bits where block j being mostly-on indicates class j."""
    y = rng.integers(0, n_classes, size=n)
    bits = (rng.random((n, n_classes * fan_in)) < 0.15).astype(np.uint8)
    for cls in range(n_classes):
        mask = y == cls
        block = (rng.random((mask.sum(), fan_in)) < 0.85).astype(np.uint8)
        bits[np.ix_(mask, np.arange(cls * fan_in, (cls + 1) * fan_in))] = block
    return bits, y


class TestSparseOutputLayer:
    def test_learns_block_structure(self, rng):
        bits, y = _make_intermediate_task(rng)
        layer = SparseQuantizedOutputLayer(n_classes=4, fan_in=5, epochs=20, seed=0)
        layer.fit(bits, y)
        assert layer.score(bits, y) > 0.9

    def test_prediction_shape_and_range(self, rng):
        bits, y = _make_intermediate_task(rng, n=200)
        layer = SparseQuantizedOutputLayer(n_classes=4, fan_in=5, epochs=5, seed=0).fit(bits, y)
        preds = layer.predict(bits)
        assert preds.shape == (200,)
        assert preds.min() >= 0 and preds.max() < 4

    def test_weights_are_sparse_blocks(self, rng):
        bits, y = _make_intermediate_task(rng, n=300)
        layer = SparseQuantizedOutputLayer(n_classes=4, fan_in=5, epochs=5, seed=0).fit(bits, y)
        assert layer.weights_.shape == (4, 5)

    def test_lut_count(self, rng):
        bits, y = _make_intermediate_task(rng, n=200)
        layer = SparseQuantizedOutputLayer(
            n_classes=4, fan_in=5, n_bits=8, epochs=3, seed=0
        ).fit(bits, y)
        assert layer.lut_count() == 8 * 4

    def test_quantisation_error_smaller_with_more_bits(self, rng):
        bits, y = _make_intermediate_task(rng, n=400)
        errors = {}
        for n_bits in (4, 8):
            layer = SparseQuantizedOutputLayer(
                n_classes=4, fan_in=5, n_bits=n_bits, epochs=10, seed=0
            ).fit(bits, y)
            errors[n_bits] = layer.quantisation_error()
        assert errors[8] <= errors[4]

    def test_wrong_input_width_rejected(self, rng):
        layer = SparseQuantizedOutputLayer(n_classes=3, fan_in=4)
        with pytest.raises(ValueError):
            layer.fit(np.zeros((10, 5), dtype=np.uint8), np.zeros(10, dtype=int))

    def test_unfitted_predict_rejected(self):
        layer = SparseQuantizedOutputLayer(n_classes=3, fan_in=4)
        with pytest.raises(RuntimeError):
            layer.predict(np.zeros((2, 12), dtype=np.uint8))

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            SparseQuantizedOutputLayer(n_classes=1, fan_in=4)
        with pytest.raises(ValueError):
            SparseQuantizedOutputLayer(n_classes=3, fan_in=0)
        with pytest.raises(ValueError):
            SparseQuantizedOutputLayer(n_classes=3, fan_in=4, n_bits=1)
        with pytest.raises(ValueError):
            SparseQuantizedOutputLayer(n_classes=3, fan_in=4, epochs=0)


class TestPackedReadout:
    """The popcount-based packed scorer vs the float reference path."""

    @pytest.fixture(scope="class")
    def fitted(self):
        rng = np.random.default_rng(77)
        bits, y = _make_intermediate_task(rng, n=400)
        layer = SparseQuantizedOutputLayer(n_classes=4, fan_in=5, epochs=8, seed=0)
        return layer.fit(bits, y), bits, y

    def test_scores_match_reference(self, fitted):
        from repro.engine import pack_bits

        layer, bits, _y = fitted
        packed = pack_bits(bits)
        np.testing.assert_allclose(
            layer.decision_scores_packed(packed, bits.shape[0]),
            layer.decision_scores(bits),
            rtol=1e-9,
            atol=1e-12,
        )

    def test_labels_match_reference(self, fitted):
        from repro.engine import pack_bits

        layer, bits, _y = fitted
        packed = pack_bits(bits)
        np.testing.assert_array_equal(
            layer.predict_packed(packed, bits.shape[0]), layer.predict(bits)
        )

    @pytest.mark.parametrize("n_samples", [0, 1, 63, 64, 65, 200])
    def test_ragged_batches(self, fitted, n_samples):
        from repro.engine import pack_bits

        layer, bits, _y = fitted
        chunk = bits[:n_samples]
        packed = pack_bits(chunk)
        scores = layer.decision_scores_packed(packed, n_samples)
        assert scores.shape == (n_samples, 4)
        if n_samples:
            np.testing.assert_allclose(
                scores, layer.decision_scores(chunk), rtol=1e-9, atol=1e-12
            )

    def test_integer_weights_round_trip(self, fitted):
        layer, _bits, _y = fitted
        ints, scale = layer._integer_weights()
        np.testing.assert_allclose(ints * scale, layer.weights_, rtol=1e-9)
        assert np.abs(ints).max() <= 2 ** (layer.n_bits - 1) - 1

    def test_all_zero_weights_are_safe(self):
        layer = SparseQuantizedOutputLayer(n_classes=2, fan_in=2)
        layer.weights_ = np.zeros((2, 2))
        layer.biases_ = np.array([0.5, -0.5])
        from repro.engine import pack_bits

        bits = np.ones((3, 4), dtype=np.uint8)
        scores = layer.decision_scores_packed(pack_bits(bits), 3)
        np.testing.assert_allclose(scores, [[0.5, -0.5]] * 3)

    def test_packed_shape_rejected(self, fitted):
        layer, _bits, _y = fitted
        with pytest.raises(ValueError):
            layer.decision_scores_packed(np.zeros((3, 2), dtype=np.uint64), 10)
        with pytest.raises(ValueError):
            layer.decision_scores_packed(np.zeros((20, 1), dtype=np.uint64), 100)


class TestPackedWeightedSums:
    """Property tests of the bit-sliced adder primitive."""

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_integer_dot(self, seed):
        from repro.engine import pack_bits
        from repro.engine.bitpack import packed_weighted_sums

        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 14))
        n = int(rng.integers(0, 300))
        bits = rng.integers(0, 2, size=(n, m), dtype=np.uint8)
        weights = rng.integers(-200, 201, size=m)
        np.testing.assert_array_equal(
            packed_weighted_sums(pack_bits(bits), weights, n),
            bits.astype(np.int64) @ weights,
        )

    def test_garbage_padding_is_ignored(self):
        from repro.engine.bitpack import packed_weighted_sums

        packed = np.full((2, 1), 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
        # only 3 samples are real; the remaining 61 padding bits are all set
        np.testing.assert_array_equal(
            packed_weighted_sums(packed, np.array([2, 3]), 3), [5, 5, 5]
        )

    def test_rejects_float_weights(self):
        from repro.engine.bitpack import packed_weighted_sums

        with pytest.raises(ValueError):
            packed_weighted_sums(
                np.zeros((1, 1), dtype=np.uint64), np.array([0.5]), 4
            )
