"""Tests for the complete PoET-BiN classifier."""

import numpy as np
import pytest

from repro.core import PoETBiNClassifier
from repro.core.rinc import RINCClassifier
from repro.datasets import make_binary_intermediate_task
from repro.utils.rng import as_rng


def _make_student_task(seed=0, n=900, n_features=64, n_classes=3, per_class=4):
    """Synthetic binary features + intermediate-bit targets + labels.

    The intermediate bits are noisy functions of small feature subsets and the
    label is derived from the per-class bit blocks, mimicking the role of the
    teacher network.
    """
    rng = as_rng(seed)
    X = (rng.random((n, n_features)) < 0.5).astype(np.uint8)
    n_intermediate = n_classes * per_class
    targets = np.empty((n, n_intermediate), dtype=np.uint8)
    for j in range(n_intermediate):
        support = rng.choice(n_features, size=6, replace=False)
        weights = rng.normal(size=6)
        bias = weights.sum() / 2
        targets[:, j] = (X[:, support] @ weights - bias >= 0).astype(np.uint8)
    block_scores = targets.reshape(n, n_classes, per_class).sum(axis=2).astype(np.float64)
    block_scores += rng.normal(scale=0.1, size=block_scores.shape)
    y = np.argmax(block_scores, axis=1).astype(np.int64)
    return X, targets, y


@pytest.fixture(scope="module")
def student_task():
    return _make_student_task()


class TestFitPredict:
    def test_end_to_end_accuracy(self, student_task):
        X, targets, y = student_task
        clf = PoETBiNClassifier(
            n_classes=3,
            n_inputs=5,
            n_levels=1,
            intermediate_per_class=4,
            output_epochs=15,
            seed=0,
        )
        clf.fit(X[:700], targets[:700], y[:700])
        assert clf.score(X[700:], y[700:]) > 0.6

    def test_intermediate_predictions_binary(self, student_task):
        X, targets, y = student_task
        clf = PoETBiNClassifier(
            n_classes=3, n_inputs=4, n_levels=1, intermediate_per_class=4,
            output_epochs=5, seed=0,
        ).fit(X[:400], targets[:400], y[:400])
        bits = clf.predict_intermediate(X[400:500])
        assert bits.shape == (100, 12)
        assert set(np.unique(bits)) <= {0, 1}

    def test_emulation_accuracy_above_chance(self, student_task):
        X, targets, y = student_task
        clf = PoETBiNClassifier(
            n_classes=3, n_inputs=5, n_levels=1, intermediate_per_class=4,
            output_epochs=5, seed=0,
        ).fit(X[:700], targets[:700], y[:700])
        emulation = clf.emulation_accuracy(X[700:], targets[700:])
        assert emulation.shape == (12,)
        assert emulation.mean() > 0.6

    def test_number_of_rinc_modules(self, student_task):
        X, targets, y = student_task
        clf = PoETBiNClassifier(
            n_classes=3, n_inputs=4, n_levels=0, intermediate_per_class=4,
            output_epochs=3, seed=0,
        ).fit(X[:300], targets[:300], y[:300])
        assert len(clf.rinc_modules_) == 12
        assert clf.n_intermediate == 12


class TestValidation:
    def test_wrong_target_width(self, student_task):
        X, targets, y = student_task
        clf = PoETBiNClassifier(n_classes=3, n_inputs=4, intermediate_per_class=4)
        with pytest.raises(ValueError):
            clf.fit(X, targets[:, :5], y)

    def test_mismatched_lengths(self, student_task):
        X, targets, y = student_task
        clf = PoETBiNClassifier(n_classes=3, n_inputs=4, intermediate_per_class=4)
        with pytest.raises(ValueError):
            clf.fit(X[:10], targets[:20], y[:20])

    def test_unfitted_predict(self):
        clf = PoETBiNClassifier(n_classes=3, n_inputs=4)
        with pytest.raises(RuntimeError):
            clf.predict(np.zeros((2, 16), dtype=np.uint8))

    def test_invalid_n_classes(self):
        with pytest.raises(ValueError):
            PoETBiNClassifier(n_classes=1)

    def test_invalid_intermediate_per_class(self):
        with pytest.raises(ValueError):
            PoETBiNClassifier(n_classes=3, intermediate_per_class=0)


class TestHardwareView:
    def test_lut_count_formula(self, student_task):
        X, targets, y = student_task
        clf = PoETBiNClassifier(
            n_classes=3, n_inputs=4, n_levels=1, intermediate_per_class=4,
            output_bits=8, output_epochs=3, seed=0,
        ).fit(X[:300], targets[:300], y[:300])
        per_module = RINCClassifier.full_lut_count(4, 1)  # 5 LUTs
        expected = 12 * per_module + 8 * 3
        assert clf.lut_count() == expected

    def test_netlist_reproduces_intermediate_bits(self, student_task):
        X, targets, y = student_task
        clf = PoETBiNClassifier(
            n_classes=3, n_inputs=4, n_levels=1, intermediate_per_class=4,
            output_epochs=3, seed=0,
        ).fit(X[:300], targets[:300], y[:300])
        netlist = clf.to_netlist()
        hardware_bits = netlist.evaluate_outputs(X[300:400])
        np.testing.assert_array_equal(hardware_bits, clf.predict_intermediate(X[300:400]))

    def test_netlist_output_count(self, student_task):
        X, targets, y = student_task
        clf = PoETBiNClassifier(
            n_classes=3, n_inputs=4, n_levels=0, intermediate_per_class=4,
            output_epochs=3, seed=0,
        ).fit(X[:200], targets[:200], y[:200])
        netlist = clf.to_netlist()
        assert len(netlist.output_signals) == 12


class TestServingEntryPoints:
    def test_decision_scores_batch_matches_predict_batch(self, student_task):
        X, targets, y = student_task
        clf = PoETBiNClassifier(
            n_classes=3, n_inputs=4, n_levels=1, intermediate_per_class=4,
            output_epochs=5, seed=0,
        ).fit(X[:400], targets[:400], y[:400])
        batch = X[400:500]
        scores = clf.decision_scores_batch(batch)
        assert scores.shape == (100, 3)
        np.testing.assert_array_equal(
            np.argmax(scores, axis=1), clf.predict_batch(batch)
        )
        # the packed scores equal the arithmetic read-out on the predicted
        # intermediate bits, up to float summation order
        reference = clf.output_layer_.decision_scores(
            clf.predict_intermediate(batch)
        )
        np.testing.assert_allclose(scores, reference, rtol=1e-9, atol=1e-9)

    def test_decision_scores_batch_requires_fit(self):
        clf = PoETBiNClassifier(n_classes=3, n_inputs=4)
        with pytest.raises(RuntimeError):
            clf.decision_scores_batch(np.zeros((2, 16), dtype=np.uint8))


class TestOnGeneratedMulticlassTask:
    def test_beats_chance_on_intermediate_task(self):
        data = make_binary_intermediate_task(
            n_train=800, n_test=200, n_features=64, n_classes=5, n_hidden=20,
            n_active=10, seed=3,
        )
        # use the hidden generative bits themselves as intermediate targets by
        # training a quick PoET-BiN whose targets are random projections of X
        rng = as_rng(0)
        per_class = 3
        n_intermediate = 5 * per_class
        targets = np.empty((data.n_train, n_intermediate), dtype=np.uint8)
        test_targets = np.empty((data.n_test, n_intermediate), dtype=np.uint8)
        for j in range(n_intermediate):
            support = rng.choice(64, size=8, replace=False)
            w = rng.normal(size=8)
            b = w.sum() / 2
            targets[:, j] = (data.X_train[:, support] @ w - b >= 0).astype(np.uint8)
            test_targets[:, j] = (data.X_test[:, support] @ w - b >= 0).astype(np.uint8)
        clf = PoETBiNClassifier(
            n_classes=5, n_inputs=5, n_levels=1, intermediate_per_class=per_class,
            output_epochs=10, seed=0,
        ).fit(data.X_train, targets, data.y_train)
        assert clf.score(data.X_test, data.y_test) > 1.0 / 5
