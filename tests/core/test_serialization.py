"""Tests for netlist serialization (save / load round trips)."""

import json

import numpy as np
import pytest

from repro.core import (
    LUTNetlist,
    RINCClassifier,
    load_netlist,
    netlist_from_dict,
    netlist_to_dict,
    save_netlist,
)
from repro.datasets import make_binary_teacher_task


def _small_netlist():
    netlist = LUTNetlist(n_primary_inputs=4)
    netlist.add_node("a", "rinc0", ["in0", "in1"], np.array([0, 1, 1, 0]))
    netlist.add_node(
        "m",
        "mat",
        ["a", "in2"],
        np.array([0, 0, 0, 1]),
        {"weights": np.array([0.7, 0.3]), "threshold": 0.0},
    )
    netlist.mark_output("m")
    return netlist


class TestDictRoundTrip:
    def test_structure_preserved(self):
        original = _small_netlist()
        restored = netlist_from_dict(netlist_to_dict(original))
        assert restored.n_primary_inputs == original.n_primary_inputs
        assert restored.n_luts == original.n_luts
        assert restored.output_signals == original.output_signals

    def test_evaluation_identical(self):
        original = _small_netlist()
        restored = netlist_from_dict(netlist_to_dict(original))
        from repro.utils.bitops import enumerate_binary_inputs

        X = enumerate_binary_inputs(4)
        np.testing.assert_array_equal(
            original.evaluate_outputs(X), restored.evaluate_outputs(X)
        )

    def test_mat_weights_restored_as_arrays(self):
        restored = netlist_from_dict(netlist_to_dict(_small_netlist()))
        weights = restored.get_node("m").metadata["weights"]
        assert isinstance(weights, np.ndarray)
        np.testing.assert_allclose(weights, [0.7, 0.3])

    def test_payload_is_json_serialisable(self):
        payload = netlist_to_dict(_small_netlist())
        text = json.dumps(payload)
        assert "rinc0" in text

    def test_unknown_version_rejected(self):
        payload = netlist_to_dict(_small_netlist())
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            netlist_from_dict(payload)


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path):
        original = _small_netlist()
        path = save_netlist(original, tmp_path / "netlist.json")
        assert path.exists()
        restored = load_netlist(path)
        assert restored.n_luts == original.n_luts

    def test_trained_rinc_round_trip(self, tmp_path):
        """A trained RINC netlist survives serialization bit-exactly."""
        data = make_binary_teacher_task(n_train=800, n_test=200, n_features=64, seed=5)
        rinc = RINCClassifier(n_inputs=5, n_levels=1).fit(data.X_train, data.y_train)
        netlist, signal = rinc.to_netlist(n_primary_inputs=64)
        netlist.mark_output(signal)
        restored = load_netlist(save_netlist(netlist, tmp_path / "rinc.json"))
        np.testing.assert_array_equal(
            restored.evaluate_outputs(data.X_test),
            netlist.evaluate_outputs(data.X_test),
        )

    def test_pruning_still_works_after_reload(self, tmp_path):
        """MAT metadata survives, so synthesizer-style pruning still applies."""
        from repro.hardware import prune_netlist

        original = _small_netlist()
        restored = load_netlist(save_netlist(original, tmp_path / "n.json"))
        pruned = prune_netlist(restored)
        assert pruned.n_luts <= restored.n_luts
