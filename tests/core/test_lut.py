"""Tests for the LUT primitive."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LUT


class TestConstruction:
    def test_basic(self):
        lut = LUT(input_indices=[3, 1], table=[0, 1, 1, 0])
        assert lut.n_inputs == 2

    def test_table_size_checked(self):
        with pytest.raises(ValueError):
            LUT(input_indices=[0, 1], table=[0, 1])

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError):
            LUT(input_indices=[2, 2], table=[0, 1, 1, 0])

    def test_negative_indices_rejected(self):
        with pytest.raises(ValueError):
            LUT(input_indices=[-1], table=[0, 1])

    def test_non_binary_table_rejected(self):
        with pytest.raises(ValueError):
            LUT(input_indices=[0], table=[0, 2])


class TestEvaluate:
    def test_xor_lut(self):
        lut = LUT(input_indices=[0, 1], table=[0, 1, 1, 0])  # XOR
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.uint8)
        np.testing.assert_array_equal(lut.evaluate(X), [0, 1, 1, 0])

    def test_indices_pick_correct_columns(self):
        lut = LUT(input_indices=[2], table=[0, 1])  # identity on column 2
        X = np.array([[1, 1, 0], [0, 0, 1]], dtype=np.uint8)
        np.testing.assert_array_equal(lut.evaluate(X), [0, 1])

    def test_first_index_is_msb(self):
        lut = LUT(input_indices=[0, 1], table=[0, 0, 1, 1])  # output = input 0
        X = np.array([[1, 0], [0, 1]], dtype=np.uint8)
        np.testing.assert_array_equal(lut.evaluate(X), [1, 0])

    def test_too_narrow_input_rejected(self):
        lut = LUT(input_indices=[5], table=[0, 1])
        with pytest.raises(ValueError):
            lut.evaluate(np.zeros((2, 3), dtype=np.uint8))

    def test_evaluate_local(self):
        lut = LUT(input_indices=[7, 9], table=[1, 0, 0, 1])
        bits = np.array([[0, 0], [1, 1]], dtype=np.uint8)
        np.testing.assert_array_equal(lut.evaluate_local(bits), [1, 1])

    def test_evaluate_local_wrong_width(self):
        lut = LUT(input_indices=[0, 1], table=[0, 1, 1, 0])
        with pytest.raises(ValueError):
            lut.evaluate_local(np.zeros((2, 3), dtype=np.uint8))


class TestHelpers:
    def test_truth_table_layout(self):
        lut = LUT(input_indices=[0, 1], table=[0, 1, 1, 0])
        tt = lut.truth_table()
        assert tt.shape == (4, 3)
        np.testing.assert_array_equal(tt[:, -1], lut.table)

    def test_from_function_majority(self):
        lut = LUT.from_function(
            np.array([0, 1, 2]), lambda bits: (bits.sum(axis=1) >= 2).astype(np.uint8)
        )
        assert lut.table.sum() == 4  # majority of 3 bits is true for 4 of 8 combos

    def test_metadata_default(self):
        lut = LUT(input_indices=[0], table=[0, 1])
        assert lut.metadata == {}


@settings(max_examples=30, deadline=None)
@given(
    n_inputs=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_lut_evaluation_matches_table_property(n_inputs, seed):
    """Evaluating the enumerated combinations always returns the table itself."""
    rng = np.random.default_rng(seed)
    table = (rng.random(2**n_inputs) < 0.5).astype(np.uint8)
    lut = LUT(input_indices=np.arange(n_inputs), table=table)
    from repro.utils.bitops import enumerate_binary_inputs

    np.testing.assert_array_equal(lut.evaluate(enumerate_binary_inputs(n_inputs)), table)
