"""Tests for the LUT netlist container."""

import numpy as np
import pytest

from repro.core import LUTNetlist
from repro.core.netlist import is_primary_input, primary_input, primary_input_index


class TestSignalNames:
    def test_round_trip(self):
        assert primary_input_index(primary_input(17)) == 17

    def test_is_primary_input(self):
        assert is_primary_input("in3")
        assert not is_primary_input("node_1")
        assert not is_primary_input("input")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            primary_input(-1)

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            primary_input_index("foo")


class TestReservedNamespace:
    """Regression: node names must not shadow primary inputs (and vice versa)."""

    def test_inputs_property(self):
        netlist = LUTNetlist(n_primary_inputs=3)
        assert netlist.inputs == ["in0", "in1", "in2"]

    def test_instance_detection_is_range_aware(self):
        netlist = LUTNetlist(n_primary_inputs=4)
        assert netlist.is_primary_input("in0")
        assert netlist.is_primary_input("in3")
        assert not netlist.is_primary_input("in4")  # syntactically valid, not declared
        assert not netlist.is_primary_input("node_1")

    def test_in_range_node_name_rejected(self):
        netlist = LUTNetlist(n_primary_inputs=4)
        with pytest.raises(ValueError, match="reserved"):
            netlist.add_node("in3", "rinc0", ["in0"], np.array([0, 1]))

    def test_out_of_range_in_name_is_a_legal_node(self):
        """A node named like ``in12`` beyond the input range is a plain node
        and must resolve to its own value, not to a primary input."""
        netlist = LUTNetlist(n_primary_inputs=2)
        netlist.add_node("in12", "rinc0", ["in0"], np.array([1, 0]))  # NOT in0
        netlist.add_node("reader", "mat", ["in12"], np.array([0, 1]))
        netlist.mark_output("reader")
        X = np.array([[0, 0], [1, 0]], dtype=np.uint8)
        # reader == in12 == NOT in0
        np.testing.assert_array_equal(netlist.evaluate_outputs(X)[:, 0], [1, 0])

    def test_out_of_range_in_name_as_output(self):
        netlist = LUTNetlist(n_primary_inputs=2)
        netlist.add_node("in7", "rinc0", ["in1"], np.array([1, 0]))
        netlist.mark_output("in7")
        X = np.array([[0, 0], [0, 1]], dtype=np.uint8)
        np.testing.assert_array_equal(netlist.evaluate_outputs(X)[:, 0], [1, 0])

    def test_out_of_range_reference_still_rejected(self):
        netlist = LUTNetlist(n_primary_inputs=2)
        with pytest.raises(ValueError, match="out of range"):
            netlist.add_node("a", "rinc0", ["in5"], np.array([0, 1]))

    def test_node_named_like_input_excluded_from_used_inputs(self):
        netlist = LUTNetlist(n_primary_inputs=2)
        netlist.add_node("in9", "rinc0", ["in0"], np.array([0, 1]))
        netlist.add_node("b", "mat", ["in9", "in1"], np.array([0, 0, 0, 1]))
        np.testing.assert_array_equal(netlist.used_primary_inputs(), [0, 1])


def _xor_netlist():
    """Small two-level netlist: out = (in0 XOR in1) AND in2."""
    netlist = LUTNetlist(n_primary_inputs=3)
    netlist.add_node("xor01", "rinc0", ["in0", "in1"], np.array([0, 1, 1, 0]))
    netlist.add_node("and2", "mat", ["xor01", "in2"], np.array([0, 0, 0, 1]))
    netlist.mark_output("and2")
    return netlist


class TestBuilding:
    def test_duplicate_name_rejected(self):
        netlist = LUTNetlist(n_primary_inputs=2)
        netlist.add_node("a", "rinc0", ["in0"], np.array([0, 1]))
        with pytest.raises(ValueError):
            netlist.add_node("a", "rinc0", ["in1"], np.array([0, 1]))

    def test_unknown_signal_rejected(self):
        netlist = LUTNetlist(n_primary_inputs=2)
        with pytest.raises(ValueError):
            netlist.add_node("a", "mat", ["ghost"], np.array([0, 1]))

    def test_primary_input_out_of_range(self):
        netlist = LUTNetlist(n_primary_inputs=2)
        with pytest.raises(ValueError):
            netlist.add_node("a", "rinc0", ["in5"], np.array([0, 1]))

    def test_table_size_validated(self):
        netlist = LUTNetlist(n_primary_inputs=2)
        with pytest.raises(ValueError):
            netlist.add_node("a", "rinc0", ["in0", "in1"], np.array([0, 1]))

    def test_duplicate_input_signals_rejected(self):
        netlist = LUTNetlist(n_primary_inputs=2)
        with pytest.raises(ValueError):
            netlist.add_node("a", "rinc0", ["in0", "in0"], np.array([0, 1, 1, 0]))

    def test_mark_unknown_output_rejected(self):
        netlist = LUTNetlist(n_primary_inputs=2)
        with pytest.raises(ValueError):
            netlist.mark_output("nope")

    def test_invalid_primary_input_count(self):
        with pytest.raises(ValueError):
            LUTNetlist(n_primary_inputs=0)

    def test_get_node(self):
        netlist = _xor_netlist()
        assert netlist.get_node("xor01").kind == "rinc0"
        with pytest.raises(KeyError):
            netlist.get_node("missing")


class TestEvaluation:
    def test_evaluate_known_function(self):
        netlist = _xor_netlist()
        X = np.array(
            [[0, 0, 1], [0, 1, 1], [1, 0, 0], [1, 1, 1]], dtype=np.uint8
        )
        out = netlist.evaluate_outputs(X)
        np.testing.assert_array_equal(out[:, 0], [0, 1, 0, 0])

    def test_wrong_input_width_rejected(self):
        netlist = _xor_netlist()
        with pytest.raises(ValueError):
            netlist.evaluate(np.zeros((2, 5), dtype=np.uint8))

    def test_no_outputs_declared(self):
        netlist = LUTNetlist(n_primary_inputs=2)
        netlist.add_node("a", "rinc0", ["in0"], np.array([0, 1]))
        with pytest.raises(RuntimeError):
            netlist.evaluate_outputs(np.zeros((1, 2), dtype=np.uint8))

    def test_primary_input_as_output(self):
        netlist = LUTNetlist(n_primary_inputs=2)
        netlist.add_node("a", "rinc0", ["in0"], np.array([0, 1]))
        netlist.mark_output("in1")
        X = np.array([[0, 1], [1, 0]], dtype=np.uint8)
        np.testing.assert_array_equal(netlist.evaluate_outputs(X)[:, 0], [1, 0])


class TestStatistics:
    def test_n_luts_and_kinds(self):
        netlist = _xor_netlist()
        assert netlist.n_luts == 2
        assert netlist.count_by_kind() == {"rinc0": 1, "mat": 1}

    def test_used_primary_inputs(self):
        netlist = _xor_netlist()
        np.testing.assert_array_equal(netlist.used_primary_inputs(), [0, 1, 2])

    def test_logic_depth(self):
        netlist = _xor_netlist()
        assert netlist.logic_depth() == 2

    def test_logic_depth_single_level(self):
        netlist = LUTNetlist(n_primary_inputs=2)
        netlist.add_node("a", "rinc0", ["in0", "in1"], np.array([0, 1, 1, 0]))
        netlist.mark_output("a")
        assert netlist.logic_depth() == 1

    def test_logic_depth_empty(self):
        assert LUTNetlist(n_primary_inputs=1).logic_depth() == 0
