"""Tests for the BinaryNet baseline classifier."""

import numpy as np
import pytest

from repro.baselines import BinaryNetClassifier
from repro.nn.layers.binary import BinaryDense


class TestTraining:
    def test_learns_multiclass_task(self, multiclass_task):
        data = multiclass_task
        clf = BinaryNetClassifier(
            n_classes=5, hidden_sizes=(64,), epochs=15, seed=0
        ).fit(data.X_train, data.y_train)
        assert clf.score(data.X_test, data.y_test) > 0.5

    def test_shadow_weights_clipped(self, multiclass_task):
        data = multiclass_task
        clf = BinaryNetClassifier(
            n_classes=5, hidden_sizes=(32,), epochs=3, seed=0
        ).fit(data.X_train, data.y_train)
        for layer in clf.model_.layers:
            if isinstance(layer, BinaryDense):
                assert np.all(np.abs(layer.params["W"]) <= 1.0 + 1e-12)

    def test_prediction_labels_in_range(self, multiclass_task):
        data = multiclass_task
        clf = BinaryNetClassifier(
            n_classes=5, hidden_sizes=(32,), epochs=2, seed=0
        ).fit(data.X_train, data.y_train)
        preds = clf.predict(data.X_test)
        assert preds.min() >= 0 and preds.max() < 5

    def test_layer_sizes_for_energy_model(self, multiclass_task):
        data = multiclass_task
        clf = BinaryNetClassifier(
            n_classes=5, hidden_sizes=(64, 32), epochs=2, seed=0
        ).fit(data.X_train, data.y_train)
        assert clf.binary_neuron_layer_sizes() == [96, 64, 32, 5]


class TestXnorPopcountPath:
    def test_matches_float_inference(self, multiclass_task):
        """The integer-only XNOR/popcount path reproduces the float predictions."""
        data = multiclass_task
        clf = BinaryNetClassifier(
            n_classes=5, hidden_sizes=(48,), epochs=4, seed=1
        ).fit(data.X_train, data.y_train)
        labels_int, hidden_bits = clf.predict_with_xnor_popcount(data.X_test)
        np.testing.assert_array_equal(labels_int, clf.predict(data.X_test))
        assert set(np.unique(hidden_bits)) <= {0, 1}


class TestValidation:
    def test_invalid_constructor(self):
        with pytest.raises(ValueError):
            BinaryNetClassifier(n_classes=1)
        with pytest.raises(ValueError):
            BinaryNetClassifier(n_classes=3, hidden_sizes=())
        with pytest.raises(ValueError):
            BinaryNetClassifier(n_classes=3, epochs=0)

    def test_unfitted_predict(self):
        with pytest.raises(RuntimeError):
            BinaryNetClassifier(n_classes=3).predict(np.zeros((2, 4), dtype=np.uint8))

    def test_non_binary_features_rejected(self, multiclass_task):
        clf = BinaryNetClassifier(n_classes=5, epochs=1)
        with pytest.raises(ValueError):
            clf.fit(multiclass_task.X_train.astype(float) + 0.5, multiclass_task.y_train)
