"""Tests for the POLYBiNN-style decision-tree baseline."""

import numpy as np
import pytest

from repro.baselines import POLYBiNNClassifier


class TestTraining:
    def test_learns_multiclass_task(self, multiclass_task):
        data = multiclass_task
        clf = POLYBiNNClassifier(
            n_classes=5, n_trees_per_class=4, max_depth=5, seed=0
        ).fit(data.X_train, data.y_train)
        assert clf.score(data.X_test, data.y_test) > 0.4

    def test_decision_scores_shape(self, multiclass_task):
        data = multiclass_task
        clf = POLYBiNNClassifier(n_classes=5, n_trees_per_class=2, max_depth=4).fit(
            data.X_train, data.y_train
        )
        scores = clf.decision_scores(data.X_test[:20])
        assert scores.shape == (20, 5)

    def test_total_trees(self, multiclass_task):
        data = multiclass_task
        clf = POLYBiNNClassifier(n_classes=5, n_trees_per_class=3, max_depth=4).fit(
            data.X_train, data.y_train
        )
        assert clf.total_trees() == 15

    def test_trees_use_many_distinct_features(self, multiclass_task):
        """Off-the-shelf trees touch more distinct features than their depth.

        This is the structural difference the paper points out versus the
        level-wise RINC-0 trees (which use exactly P distinct features).
        """
        data = multiclass_task
        clf = POLYBiNNClassifier(n_classes=5, n_trees_per_class=2, max_depth=5).fit(
            data.X_train, data.y_train
        )
        assert clf.max_distinct_features_per_tree() > 5


class TestValidation:
    def test_invalid_constructor(self):
        with pytest.raises(ValueError):
            POLYBiNNClassifier(n_classes=1)
        with pytest.raises(ValueError):
            POLYBiNNClassifier(n_classes=3, n_trees_per_class=0)
        with pytest.raises(ValueError):
            POLYBiNNClassifier(n_classes=3, max_depth=0)

    def test_unfitted_predict(self):
        with pytest.raises(RuntimeError):
            POLYBiNNClassifier(n_classes=3).predict(np.zeros((2, 4), dtype=np.uint8))

    def test_labels_out_of_range_rejected(self, multiclass_task):
        clf = POLYBiNNClassifier(n_classes=3)
        with pytest.raises(ValueError):
            clf.fit(multiclass_task.X_train, multiclass_task.y_train)  # labels go to 4
