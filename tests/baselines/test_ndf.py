"""Tests for the Neural Decision Forest baseline."""

import numpy as np
import pytest

from repro.baselines import NeuralDecisionForest


class TestRouting:
    def test_leaf_probabilities_sum_to_one(self, multiclass_task):
        data = multiclass_task
        forest = NeuralDecisionForest(n_classes=5, n_trees=2, depth=3, epochs=1, seed=0)
        forest.fit(data.X_train[:200], data.y_train[:200])
        mu = forest.trees_[0].routing(
            2.0 * data.X_test[:50].astype(np.float64) - 1.0
        )
        np.testing.assert_allclose(mu.sum(axis=1), 1.0, atol=1e-9)

    def test_leaf_distributions_are_distributions(self, multiclass_task):
        data = multiclass_task
        forest = NeuralDecisionForest(n_classes=5, n_trees=2, depth=3, epochs=2, seed=0)
        forest.fit(data.X_train[:300], data.y_train[:300])
        for tree in forest.trees_:
            np.testing.assert_allclose(tree.leaf_distributions.sum(axis=1), 1.0, atol=1e-9)
            assert np.all(tree.leaf_distributions >= 0)

    def test_predict_proba_normalised(self, multiclass_task):
        data = multiclass_task
        forest = NeuralDecisionForest(n_classes=5, n_trees=2, depth=3, epochs=1, seed=0)
        forest.fit(data.X_train[:200], data.y_train[:200])
        probs = forest.predict_proba(data.X_test[:30])
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-6)


class TestTraining:
    def test_learns_multiclass_task(self, multiclass_task):
        data = multiclass_task
        forest = NeuralDecisionForest(
            n_classes=5, n_trees=3, depth=4, epochs=8, learning_rate=0.2, seed=0
        ).fit(data.X_train, data.y_train)
        assert forest.score(data.X_test, data.y_test) > 0.45

    def test_training_improves_over_initialisation(self, multiclass_task):
        data = multiclass_task
        untrained = NeuralDecisionForest(n_classes=5, n_trees=2, depth=3, epochs=1, seed=0)
        untrained.fit(data.X_train[:50], data.y_train[:50])  # barely trained
        trained = NeuralDecisionForest(
            n_classes=5, n_trees=2, depth=3, epochs=8, learning_rate=0.2, seed=0
        ).fit(data.X_train, data.y_train)
        assert trained.score(data.X_test, data.y_test) >= untrained.score(
            data.X_test, data.y_test
        )


class TestValidation:
    def test_invalid_constructor(self):
        with pytest.raises(ValueError):
            NeuralDecisionForest(n_classes=1)
        with pytest.raises(ValueError):
            NeuralDecisionForest(n_classes=3, n_trees=0)
        with pytest.raises(ValueError):
            NeuralDecisionForest(n_classes=3, depth=12)
        with pytest.raises(ValueError):
            NeuralDecisionForest(n_classes=3, epochs=0)

    def test_unfitted_predict(self):
        with pytest.raises(RuntimeError):
            NeuralDecisionForest(n_classes=3).predict(np.zeros((2, 4), dtype=np.uint8))
