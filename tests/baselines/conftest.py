"""Shared multiclass binary-feature task for baseline tests."""

from __future__ import annotations

import pytest

from repro.datasets import make_binary_intermediate_task


@pytest.fixture(scope="package")
def multiclass_task():
    return make_binary_intermediate_task(
        n_train=1500,
        n_test=400,
        n_features=96,
        n_classes=5,
        n_hidden=24,
        n_active=10,
        seed=17,
    )
