"""Tests for the discrete AdaBoost implementation."""

import numpy as np
import pytest

from repro.boosting import AdaBoost
from repro.datasets import make_binary_parity_task, make_binary_teacher_task
from repro.trees import LevelWiseDecisionTree


def _stump_factory(_round_index):
    return LevelWiseDecisionTree(n_inputs=1)


def _tree_factory(n_inputs):
    def factory(_round_index):
        return LevelWiseDecisionTree(n_inputs=n_inputs)

    return factory


class TestFit:
    def test_number_of_rounds(self):
        data = make_binary_teacher_task(n_train=300, n_test=50, n_features=32, seed=0)
        booster = AdaBoost(_stump_factory, n_rounds=5).fit(data.X_train, data.y_train)
        assert len(booster.rounds_) == 5
        assert booster.alphas_.shape == (5,)

    def test_boosting_beats_single_stump(self):
        data = make_binary_teacher_task(
            n_train=1200, n_test=400, n_features=48, n_active=12, seed=1
        )
        stump = LevelWiseDecisionTree(n_inputs=1).fit(data.X_train, data.y_train)
        booster = AdaBoost(_stump_factory, n_rounds=12).fit(data.X_train, data.y_train)
        assert booster.score(data.X_test, data.y_test) > stump.score(data.X_test, data.y_test)

    def test_boosting_aggregates_majority_vote_task(self):
        """Boosted small trees approach the majority-vote labels that need many features."""
        from repro.datasets import make_correlated_binary_task

        data = make_correlated_binary_task(
            n_train=2500, n_test=500, n_blocks=9, block_size=4, flip_prob=0.05, seed=2
        )
        single = LevelWiseDecisionTree(n_inputs=3).fit(data.X_train, data.y_train)
        booster = AdaBoost(_tree_factory(3), n_rounds=10).fit(data.X_train, data.y_train)
        assert booster.score(data.X_test, data.y_test) >= 0.8
        assert (
            booster.score(data.X_test, data.y_test)
            >= single.score(data.X_test, data.y_test) - 1e-9
        )

    def test_greedy_trees_cannot_solve_parity(self):
        """Documented limitation: greedy entropy selection misses pure-XOR bits.

        Neither a single level-wise tree nor its boosted ensemble can find the
        parity support because each parity bit has zero marginal information
        gain; this mirrors the behaviour of the paper's greedy Algorithm 1.
        """
        data = make_binary_parity_task(
            n_train=1500, n_test=300, n_features=16, parity_bits=2, seed=2
        )
        booster = AdaBoost(_tree_factory(2), n_rounds=8).fit(data.X_train, data.y_train)
        assert booster.score(data.X_test, data.y_test) < 0.75

    def test_alphas_positive_for_better_than_chance(self):
        data = make_binary_teacher_task(n_train=400, n_test=50, n_features=32, seed=3)
        booster = AdaBoost(_tree_factory(3), n_rounds=4).fit(data.X_train, data.y_train)
        assert np.all(booster.alphas_ >= 0)
        assert booster.alphas_[0] > 0

    def test_perfect_learner_gets_finite_alpha(self, rng):
        X = (rng.random((200, 8)) < 0.5).astype(np.uint8)
        y = X[:, 0].astype(np.int64)  # a 1-input tree is perfect
        booster = AdaBoost(_stump_factory, n_rounds=3).fit(X, y)
        assert np.isfinite(booster.alphas_).all()
        assert booster.score(X, y) == 1.0

    def test_initial_sample_weights_respected(self, rng):
        n = 800
        X = (rng.random((n, 8)) < 0.5).astype(np.uint8)
        y = np.concatenate([X[: n // 2, 0], X[n // 2 :, 5]]).astype(np.int64)
        w = np.concatenate([np.full(n // 2, 1.0), np.full(n // 2, 1e-9)])
        booster = AdaBoost(_stump_factory, n_rounds=1).fit(X, y, sample_weight=w)
        assert booster.rounds_[0].learner.feature_indices_[0] == 0

    def test_staged_scores_monotone_tail(self):
        data = make_binary_teacher_task(n_train=800, n_test=100, n_features=32, seed=4)
        booster = AdaBoost(_tree_factory(2), n_rounds=6).fit(data.X_train, data.y_train)
        staged = booster.staged_scores(data.X_train, data.y_train)
        assert staged.shape == (6,)
        assert staged[-1] >= staged[0] - 0.05


class TestValidation:
    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            AdaBoost(_stump_factory, n_rounds=0)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            AdaBoost(_stump_factory, n_rounds=2, epsilon=0.0)

    def test_unfitted_predict(self):
        with pytest.raises(RuntimeError):
            AdaBoost(_stump_factory, n_rounds=2).predict(np.zeros((1, 4), dtype=np.uint8))

    def test_bad_sample_weights(self, rng):
        X = (rng.random((20, 4)) < 0.5).astype(np.uint8)
        y = (rng.random(20) < 0.5).astype(np.int64)
        with pytest.raises(ValueError):
            AdaBoost(_stump_factory, n_rounds=2).fit(X, y, sample_weight=np.ones(3))

    def test_non_binary_labels_rejected(self, rng):
        X = (rng.random((20, 4)) < 0.5).astype(np.uint8)
        with pytest.raises(ValueError):
            AdaBoost(_stump_factory, n_rounds=2).fit(X, np.full(20, 2))


class TestWeakLearnerAtChance:
    def test_chance_learner_gets_zero_alpha(self, rng):
        """Labels independent of features: weak learners stay at chance."""
        X = (rng.random((500, 6)) < 0.5).astype(np.uint8)
        y = (rng.random(500) < 0.5).astype(np.int64)
        booster = AdaBoost(_stump_factory, n_rounds=4).fit(X, y)
        # at least the structure is preserved even when learning is impossible
        assert len(booster.rounds_) == 4
        preds = booster.predict(X)
        assert set(np.unique(preds)) <= {0, 1}
