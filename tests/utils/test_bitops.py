"""Tests for repro.utils.bitops, including property-based round trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bitops import (
    binary_to_index,
    enumerate_binary_inputs,
    index_to_binary,
    pack_bits,
    popcount,
    unpack_bits,
)


class TestBinaryToIndex:
    def test_simple_values(self):
        bits = np.array([[0, 0, 0], [0, 0, 1], [1, 0, 0], [1, 1, 1]])
        np.testing.assert_array_equal(binary_to_index(bits), [0, 1, 4, 7])

    def test_first_column_is_msb(self):
        assert binary_to_index(np.array([1, 0])) == 2

    def test_1d_input_returns_scalar(self):
        result = binary_to_index(np.array([1, 0, 1]))
        assert result == 5

    def test_zero_width(self):
        np.testing.assert_array_equal(
            binary_to_index(np.zeros((4, 0), dtype=np.uint8)), [0, 0, 0, 0]
        )

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            binary_to_index(np.zeros((2, 2, 2)))


class TestIndexToBinary:
    def test_round_trip_small(self):
        idx = np.arange(16)
        bits = index_to_binary(idx, 4)
        np.testing.assert_array_equal(binary_to_index(bits), idx)

    def test_width(self):
        assert index_to_binary(np.array([3]), 5).shape == (1, 5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            index_to_binary(np.array([8]), 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            index_to_binary(np.array([-1]), 3)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            index_to_binary(np.array([0]), -1)


class TestEnumerateBinaryInputs:
    def test_shape(self):
        table = enumerate_binary_inputs(4)
        assert table.shape == (16, 4)

    def test_addresses_in_order(self):
        table = enumerate_binary_inputs(5)
        np.testing.assert_array_equal(binary_to_index(table), np.arange(32))

    def test_zero_bits(self):
        table = enumerate_binary_inputs(0)
        assert table.shape == (1, 0)

    def test_width_limit(self):
        with pytest.raises(ValueError):
            enumerate_binary_inputs(30)


class TestPopcount:
    def test_known_values(self):
        np.testing.assert_array_equal(popcount(np.array([0, 1, 2, 3, 255])), [0, 1, 1, 2, 8])

    def test_large_value(self):
        assert popcount(np.array([2**40 - 1]))[0] == 40


class TestPackUnpack:
    def test_round_trip(self, rng):
        bits = (rng.random((17, 37)) < 0.5).astype(np.uint8)
        packed = pack_bits(bits)
        np.testing.assert_array_equal(unpack_bits(packed, 37), bits)

    def test_pack_rejects_1d(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([1, 0, 1], dtype=np.uint8))

    def test_unpack_rejects_too_many_features(self):
        packed = pack_bits(np.zeros((2, 8), dtype=np.uint8))
        with pytest.raises(ValueError):
            unpack_bits(packed, 64)


@settings(max_examples=50, deadline=None)
@given(
    n_bits=st.integers(min_value=1, max_value=12),
    data=st.data(),
)
def test_index_binary_round_trip_property(n_bits, data):
    """index -> bits -> index is the identity for any address."""
    index = data.draw(st.integers(min_value=0, max_value=2**n_bits - 1))
    bits = index_to_binary(np.array([index]), n_bits)
    assert binary_to_index(bits)[0] == index


@settings(max_examples=50, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=20),
    cols=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_binary_index_round_trip_property(rows, cols, seed):
    """bits -> index -> bits is the identity for any binary matrix."""
    rng = np.random.default_rng(seed)
    bits = (rng.random((rows, cols)) < 0.5).astype(np.uint8)
    idx = binary_to_index(bits)
    np.testing.assert_array_equal(index_to_binary(idx, cols), bits)
