"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_table, render_markdown_table


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        assert "a" in text and "b" in text
        assert "1" in text and "4" in text

    def test_alignment_consistent(self):
        text = format_table(["col", "x"], [["value", 1]])
        lines = text.splitlines()
        assert len(lines) == 3

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["v"], [[1.23456789e-9]])
        assert "e-09" in text or "1.23e-09" in text


class TestMarkdownTable:
    def test_structure(self):
        text = render_markdown_table(["a", "b"], [[1, 2]])
        lines = text.splitlines()
        assert lines[0].startswith("|")
        assert set(lines[1].replace("|", "")) <= {"-"}
        assert len(lines) == 3

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            render_markdown_table(["a"], [[1, 2]])
