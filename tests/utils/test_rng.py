"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rngs


class TestAsRng:
    def test_none_returns_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_rng(42).integers(0, 1000, size=10)
        b = as_rng(42).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_rng(1).integers(0, 10**9, size=8)
        b = as_rng(2).integers(0, 10**9, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert as_rng(gen) is gen

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            as_rng(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            as_rng("seed")  # type: ignore[arg-type]

    def test_numpy_integer_seed_accepted(self):
        gen = as_rng(np.int64(5))
        assert isinstance(gen, np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        rngs = spawn_rngs(0, 5)
        assert len(rngs) == 5

    def test_children_are_independent(self):
        rngs = spawn_rngs(0, 3)
        draws = [g.integers(0, 10**9, size=4) for g in rngs]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_deterministic_given_seed(self):
        a = [g.integers(0, 100, size=3) for g in spawn_rngs(9, 2)]
        b = [g.integers(0, 100, size=3) for g in spawn_rngs(9, 2)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
