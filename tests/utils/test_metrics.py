"""Tests for repro.utils.metrics."""

import numpy as np
import pytest

from repro.utils.metrics import (
    accuracy,
    binary_accuracy,
    classification_report,
    confusion_matrix,
    error_rate,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 2])) == 1.0

    def test_half(self):
        assert accuracy(np.array([0, 1, 0, 1]), np.array([0, 1, 1, 0])) == 0.5

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0, 1]), np.array([0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_error_rate_complement(self):
        y_true = np.array([0, 1, 1, 0])
        y_pred = np.array([0, 0, 1, 0])
        assert accuracy(y_true, y_pred) + error_rate(y_true, y_pred) == pytest.approx(1.0)


class TestBinaryAccuracy:
    def test_accepts_binary(self):
        assert binary_accuracy(np.array([0, 1]), np.array([1, 1])) == 0.5

    def test_rejects_multiclass(self):
        with pytest.raises(ValueError):
            binary_accuracy(np.array([0, 2]), np.array([0, 1]))


class TestConfusionMatrix:
    def test_values(self):
        cm = confusion_matrix(np.array([0, 0, 1, 1]), np.array([0, 1, 1, 1]))
        np.testing.assert_array_equal(cm, [[1, 1], [0, 2]])

    def test_explicit_n_classes(self):
        cm = confusion_matrix(np.array([0]), np.array([0]), n_classes=4)
        assert cm.shape == (4, 4)

    def test_row_sums_equal_class_counts(self, rng):
        y_true = rng.integers(0, 5, size=200)
        y_pred = rng.integers(0, 5, size=200)
        cm = confusion_matrix(y_true, y_pred, n_classes=5)
        np.testing.assert_array_equal(cm.sum(axis=1), np.bincount(y_true, minlength=5))

    def test_negative_labels_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([-1, 0]), np.array([0, 0]))


class TestClassificationReport:
    def test_perfect_prediction(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        report = classification_report(y, y)
        np.testing.assert_allclose(report["precision"], 1.0)
        np.testing.assert_allclose(report["recall"], 1.0)
        np.testing.assert_allclose(report["f1"], 1.0)
        assert report["accuracy"] == 1.0

    def test_missing_class_gets_zero(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 0, 0, 0])
        report = classification_report(y_true, y_pred)
        assert report["recall"][1] == 0.0
        assert report["precision"][1] == 0.0
        assert report["f1"][1] == 0.0
