"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_binary_matrix,
    check_binary_vector,
    check_consistent_lengths,
    check_labels,
    check_probability,
)


class TestConsistentLengths:
    def test_passes_when_equal(self):
        check_consistent_lengths(a=np.zeros(3), b=np.ones((3, 2)))

    def test_raises_when_different(self):
        with pytest.raises(ValueError, match="inconsistent"):
            check_consistent_lengths(a=np.zeros(3), b=np.zeros(4))


class TestBinaryMatrix:
    def test_valid(self):
        out = check_binary_matrix(np.array([[0, 1], [1, 0]]))
        assert out.dtype == np.uint8

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            check_binary_matrix(np.array([[0, 2]]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            check_binary_matrix(np.array([0, 1]))

    def test_empty_ok(self):
        assert check_binary_matrix(np.zeros((0, 5))).shape == (0, 5)


class TestBinaryVector:
    def test_valid(self):
        out = check_binary_vector(np.array([0, 1, 1]))
        assert out.dtype == np.uint8

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            check_binary_vector(np.zeros((2, 2)))

    def test_rejects_values(self):
        with pytest.raises(ValueError):
            check_binary_vector(np.array([0, 1, 3]))


class TestLabels:
    def test_valid(self):
        out = check_labels(np.array([0, 1, 2]), 3)
        assert out.dtype == np.int64

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_labels(np.array([0, 3]), 3)

    def test_rejects_non_integer(self):
        with pytest.raises(ValueError):
            check_labels(np.array([0.5, 1.0]), 2)

    def test_accepts_integer_valued_floats(self):
        out = check_labels(np.array([0.0, 1.0]), 2)
        np.testing.assert_array_equal(out, [0, 1])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            check_labels(np.zeros((2, 2)), 2)


class TestProbability:
    def test_valid(self):
        assert check_probability(0.5) == 0.5

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValueError):
            check_probability(value)
