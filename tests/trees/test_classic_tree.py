"""Tests for the conventional node-wise decision tree."""

import numpy as np
import pytest

from repro.datasets import make_binary_teacher_task
from repro.trees import ClassicDecisionTree, LevelWiseDecisionTree


class TestFit:
    def test_learns_single_feature(self, rng):
        X = (rng.random((200, 10)) < 0.5).astype(np.uint8)
        y = X[:, 4].astype(np.int64)
        tree = ClassicDecisionTree(max_depth=3).fit(X, y)
        assert tree.score(X, y) == 1.0
        assert tree.depth_ >= 1

    def test_learns_and_of_two_features(self, rng):
        X = (rng.random((400, 8)) < 0.5).astype(np.uint8)
        y = (X[:, 1] & X[:, 6]).astype(np.int64)
        tree = ClassicDecisionTree(max_depth=4).fit(X, y)
        assert tree.score(X, y) == 1.0

    def test_depth_limit_respected(self, rng):
        data = make_binary_teacher_task(n_train=500, n_test=100, n_features=32, seed=0)
        tree = ClassicDecisionTree(max_depth=3).fit(data.X_train, data.y_train)
        assert tree.depth_ <= 3

    def test_max_nodes_limit(self, rng):
        data = make_binary_teacher_task(n_train=500, n_test=100, n_features=32, seed=0)
        tree = ClassicDecisionTree(max_depth=10, max_nodes=5).fit(data.X_train, data.y_train)
        assert tree.n_internal_nodes_ <= 5 + 2  # children created at the limit boundary

    def test_sample_weights_respected(self, rng):
        n = 600
        X = (rng.random((n, 6)) < 0.5).astype(np.uint8)
        y = np.concatenate([X[: n // 2, 0], X[n // 2 :, 3]]).astype(np.int64)
        w = np.concatenate([np.full(n // 2, 1.0), np.full(n // 2, 1e-9)])
        tree = ClassicDecisionTree(max_depth=1).fit(X, y, sample_weight=w)
        assert tree.root_.feature == 0

    def test_pure_labels_give_leaf(self):
        X = np.array([[0, 1], [1, 0], [1, 1]], dtype=np.uint8)
        y = np.ones(3, dtype=np.int64)
        tree = ClassicDecisionTree(max_depth=3).fit(X, y)
        assert tree.root_.is_leaf
        assert tree.predict(X).tolist() == [1, 1, 1]


class TestValidation:
    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            ClassicDecisionTree(max_depth=0)

    def test_invalid_max_nodes(self):
        with pytest.raises(ValueError):
            ClassicDecisionTree(max_nodes=0)

    def test_unfitted_predict(self):
        with pytest.raises(RuntimeError):
            ClassicDecisionTree().predict(np.zeros((1, 3), dtype=np.uint8))

    def test_unfitted_count_features(self):
        with pytest.raises(RuntimeError):
            ClassicDecisionTree().count_distinct_features()

    def test_bad_weights(self, rng):
        X = (rng.random((10, 4)) < 0.5).astype(np.uint8)
        y = (rng.random(10) < 0.5).astype(np.int64)
        with pytest.raises(ValueError):
            ClassicDecisionTree().fit(X, y, sample_weight=np.ones(3))


class TestComparisonWithLevelWise:
    def test_classic_tree_may_use_more_distinct_features_per_capacity(self):
        """A depth-P classic tree may touch more than P distinct features.

        This is the paper's motivation for the level-wise variant: a classic
        tree of the same depth does not map onto a single P-input LUT.
        """
        data = make_binary_teacher_task(
            n_train=2000, n_test=200, n_features=64, n_active=24, seed=5
        )
        depth = 4
        classic = ClassicDecisionTree(max_depth=depth).fit(data.X_train, data.y_train)
        level = LevelWiseDecisionTree(n_inputs=depth).fit(data.X_train, data.y_train)
        assert len(level.feature_indices_) == depth
        assert classic.count_distinct_features() >= depth

    def test_level_tree_competitive_on_teacher_task(self):
        data = make_binary_teacher_task(
            n_train=1500, n_test=400, n_features=48, n_active=10, seed=7
        )
        classic = ClassicDecisionTree(max_depth=5).fit(data.X_train, data.y_train)
        level = LevelWiseDecisionTree(n_inputs=5).fit(data.X_train, data.y_train)
        assert level.score(data.X_test, data.y_test) >= classic.score(data.X_test, data.y_test) - 0.08
