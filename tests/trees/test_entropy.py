"""Tests for entropy helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees.entropy import binary_entropy, entropy_from_counts, weighted_label_entropy


class TestBinaryEntropy:
    def test_extremes_are_zero(self):
        np.testing.assert_array_equal(binary_entropy(np.array([0.0, 1.0])), [0.0, 0.0])

    def test_maximum_at_half(self):
        assert binary_entropy(np.array(0.5)) == pytest.approx(1.0)

    def test_symmetry(self):
        p = np.array([0.1, 0.3, 0.45])
        np.testing.assert_allclose(binary_entropy(p), binary_entropy(1 - p))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            binary_entropy(np.array([1.5]))


class TestEntropyFromCounts:
    def test_pure_node_zero(self):
        assert entropy_from_counts(np.array([10.0, 0.0])) == 0.0

    def test_balanced_node_one_bit(self):
        assert entropy_from_counts(np.array([5.0, 5.0])) == pytest.approx(1.0)

    def test_empty_node_zero(self):
        assert entropy_from_counts(np.array([0.0, 0.0])) == 0.0

    def test_batched_rows(self):
        counts = np.array([[1.0, 1.0], [2.0, 0.0], [0.0, 0.0]])
        np.testing.assert_allclose(entropy_from_counts(counts), [1.0, 0.0, 0.0])

    def test_multiclass_uniform(self):
        assert entropy_from_counts(np.ones(8)) == pytest.approx(3.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            entropy_from_counts(np.array([-1.0, 2.0]))


class TestWeightedLabelEntropy:
    def test_matches_unweighted(self):
        y = np.array([0, 0, 1, 1])
        w = np.full(4, 0.25)
        assert weighted_label_entropy(y, w) == pytest.approx(1.0)

    def test_weights_shift_distribution(self):
        y = np.array([0, 1])
        w = np.array([0.9, 0.1])
        assert weighted_label_entropy(y, w) < 1.0

    def test_zero_weights(self):
        assert weighted_label_entropy(np.array([0, 1]), np.array([0.0, 0.0])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            weighted_label_entropy(np.array([0, 1]), np.array([1.0]))

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_label_entropy(np.array([0, 1]), np.array([-1.0, 1.0]))


@settings(max_examples=50, deadline=None)
@given(
    counts=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=2, max_size=6
    )
)
def test_entropy_bounds_property(counts):
    """Entropy is always within [0, log2(n_classes)]."""
    arr = np.array(counts)
    value = entropy_from_counts(arr)
    assert 0.0 <= value <= np.log2(len(counts)) + 1e-9
