"""Tests for the level-wise decision tree (Algorithm 1 / RINC-0 trainer)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import make_binary_teacher_task
from repro.trees import LevelWiseDecisionTree
from repro.utils.bitops import binary_to_index


class TestFitBasics:
    def test_selects_exactly_p_distinct_features(self):
        data = make_binary_teacher_task(n_train=500, n_test=100, n_features=64, seed=0)
        tree = LevelWiseDecisionTree(n_inputs=6).fit(data.X_train, data.y_train)
        assert len(tree.feature_indices_) == 6
        assert len(set(tree.feature_indices_.tolist())) == 6

    def test_table_size(self):
        data = make_binary_teacher_task(n_train=200, n_test=50, n_features=32, seed=1)
        tree = LevelWiseDecisionTree(n_inputs=5).fit(data.X_train, data.y_train)
        assert tree.table_.shape == (32,)
        assert set(np.unique(tree.table_)) <= {0, 1}

    def test_single_informative_feature_found(self, rng):
        X = (rng.random((400, 20)) < 0.5).astype(np.uint8)
        y = X[:, 7].astype(np.int64)  # label equals feature 7
        tree = LevelWiseDecisionTree(n_inputs=3).fit(X, y)
        assert 7 in tree.feature_indices_
        assert tree.score(X, y) == 1.0

    def test_first_level_gets_most_informative_feature(self, rng):
        X = (rng.random((600, 10)) < 0.5).astype(np.uint8)
        noise = (rng.random(600) < 0.1).astype(np.uint8)
        y = (X[:, 3] ^ noise).astype(np.int64)  # feature 3 is 90% predictive
        tree = LevelWiseDecisionTree(n_inputs=2).fit(X, y)
        assert tree.feature_indices_[0] == 3

    def test_excluded_features_not_selected(self, rng):
        X = (rng.random((300, 12)) < 0.5).astype(np.uint8)
        y = X[:, 2].astype(np.int64)
        tree = LevelWiseDecisionTree(n_inputs=3, excluded_features=[2]).fit(X, y)
        assert 2 not in tree.feature_indices_

    def test_learns_xor_of_two_features(self, rng):
        """Level-wise trees represent XOR exactly when both bits are selected."""
        X = (rng.random((800, 16)) < 0.5).astype(np.uint8)
        y = (X[:, 1] ^ X[:, 4]).astype(np.int64)
        tree = LevelWiseDecisionTree(n_inputs=4).fit(X, y)
        assert tree.score(X, y) == 1.0

    def test_sample_weights_change_selection(self, rng):
        """Upweighting a subset makes its predictive feature win."""
        n = 1000
        X = (rng.random((n, 8)) < 0.5).astype(np.uint8)
        # feature 0 predicts the first half, feature 5 predicts the second half
        y = np.concatenate([X[: n // 2, 0], X[n // 2 :, 5]]).astype(np.int64)
        w_first = np.concatenate([np.full(n // 2, 1.0), np.full(n // 2, 1e-6)])
        w_second = np.concatenate([np.full(n // 2, 1e-6), np.full(n // 2, 1.0)])
        tree_first = LevelWiseDecisionTree(n_inputs=1).fit(X, y, sample_weight=w_first)
        tree_second = LevelWiseDecisionTree(n_inputs=1).fit(X, y, sample_weight=w_second)
        assert tree_first.feature_indices_[0] == 0
        assert tree_second.feature_indices_[0] == 5


class TestPredict:
    def test_decision_path_matches_selected_bits(self, rng):
        X = (rng.random((100, 10)) < 0.5).astype(np.uint8)
        y = (rng.random(100) < 0.5).astype(np.int64)
        tree = LevelWiseDecisionTree(n_inputs=3).fit(X, y)
        path = tree.decision_path(X)
        expected = binary_to_index(X[:, tree.feature_indices_])
        np.testing.assert_array_equal(path, expected)

    def test_prediction_is_table_lookup(self, rng):
        X = (rng.random((50, 8)) < 0.5).astype(np.uint8)
        y = (rng.random(50) < 0.5).astype(np.int64)
        tree = LevelWiseDecisionTree(n_inputs=4).fit(X, y)
        np.testing.assert_array_equal(tree.predict(X), tree.table_[tree.decision_path(X)])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LevelWiseDecisionTree(n_inputs=3).predict(np.zeros((1, 8), dtype=np.uint8))

    def test_too_few_columns_rejected(self, rng):
        X = (rng.random((40, 10)) < 0.5).astype(np.uint8)
        y = (rng.random(40) < 0.5).astype(np.int64)
        tree = LevelWiseDecisionTree(n_inputs=3).fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(X[:, :2])

    def test_to_lut_round_trip(self, rng):
        X = (rng.random((60, 12)) < 0.5).astype(np.uint8)
        y = (rng.random(60) < 0.5).astype(np.int64)
        tree = LevelWiseDecisionTree(n_inputs=4).fit(X, y)
        features, table = tree.to_lut()
        np.testing.assert_array_equal(features, tree.feature_indices_)
        np.testing.assert_array_equal(table, tree.table_)
        # returned arrays are copies
        table[0] ^= 1
        assert table[0] != tree.table_[0]


class TestValidation:
    def test_invalid_n_inputs(self):
        with pytest.raises(ValueError):
            LevelWiseDecisionTree(n_inputs=0)
        with pytest.raises(ValueError):
            LevelWiseDecisionTree(n_inputs=20)

    def test_non_binary_features_rejected(self):
        with pytest.raises(ValueError):
            LevelWiseDecisionTree(n_inputs=2).fit(np.array([[0, 2]]), np.array([1]))

    def test_too_few_features(self, rng):
        X = (rng.random((20, 3)) < 0.5).astype(np.uint8)
        y = (rng.random(20) < 0.5).astype(np.int64)
        with pytest.raises(ValueError):
            LevelWiseDecisionTree(n_inputs=5).fit(X, y)

    def test_bad_sample_weight_shape(self, rng):
        X = (rng.random((20, 8)) < 0.5).astype(np.uint8)
        y = (rng.random(20) < 0.5).astype(np.int64)
        with pytest.raises(ValueError):
            LevelWiseDecisionTree(n_inputs=2).fit(X, y, sample_weight=np.ones(5))

    def test_zero_weights_rejected(self, rng):
        X = (rng.random((20, 8)) < 0.5).astype(np.uint8)
        y = (rng.random(20) < 0.5).astype(np.int64)
        with pytest.raises(ValueError):
            LevelWiseDecisionTree(n_inputs=2).fit(X, y, sample_weight=np.zeros(20))

    def test_excluded_out_of_range(self, rng):
        X = (rng.random((20, 8)) < 0.5).astype(np.uint8)
        y = (rng.random(20) < 0.5).astype(np.int64)
        with pytest.raises(ValueError):
            LevelWiseDecisionTree(n_inputs=2, excluded_features=[99]).fit(X, y)


class TestAgainstTrainingAccuracy:
    def test_better_than_chance_on_teacher_task(self):
        data = make_binary_teacher_task(n_train=1500, n_test=400, n_features=64, n_active=12, seed=3)
        tree = LevelWiseDecisionTree(n_inputs=6).fit(data.X_train, data.y_train)
        assert tree.score(data.X_test, data.y_test) > 0.6

    def test_training_accuracy_not_below_majority_class(self, rng):
        X = (rng.random((500, 16)) < 0.5).astype(np.uint8)
        y = (rng.random(500) < 0.3).astype(np.int64)
        tree = LevelWiseDecisionTree(n_inputs=4).fit(X, y)
        majority = max(y.mean(), 1 - y.mean())
        assert tree.score(X, y) >= majority - 1e-9


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_inputs=st.integers(min_value=1, max_value=5),
)
def test_level_tree_invariants_property(seed, n_inputs):
    """Fitted trees always expose P distinct in-range features and a 2^P table."""
    rng = np.random.default_rng(seed)
    n_features = 12
    X = (rng.random((200, n_features)) < 0.5).astype(np.uint8)
    y = (rng.random(200) < 0.5).astype(np.int64)
    tree = LevelWiseDecisionTree(n_inputs=n_inputs).fit(X, y)
    assert len(tree.feature_indices_) == n_inputs
    assert len(np.unique(tree.feature_indices_)) == n_inputs
    assert np.all((tree.feature_indices_ >= 0) & (tree.feature_indices_ < n_features))
    assert tree.table_.shape == (2**n_inputs,)
    preds = tree.predict(X)
    assert set(np.unique(preds)) <= {0, 1}
