"""Tests for the analytical table experiments (Tables 3, 4, 5, 6, 7)."""

import math

import pytest

from repro.experiments import (
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
)
from repro.experiments.table3_power import paper_scale_physical_luts
from repro.experiments.table6_energy import PAPER_TABLE6, energy_reduction_summary
from repro.experiments.reporting import rows_to_table
from repro.experiments.table2_accuracy import TABLE2_HEADERS
from repro.experiments.table6_energy import TABLE6_HEADERS


class TestTable3:
    def test_three_rows(self):
        rows = run_table3()
        assert [row.dataset for row in rows] == ["mnist", "cifar10", "svhn"]

    def test_power_in_plausible_range(self):
        for row in run_table3():
            assert 0.02 < row.total_w < 2.0
            assert row.total_w == pytest.approx(row.dynamic_w + row.static_w)

    def test_same_order_of_magnitude_as_paper(self):
        for row in run_table3():
            assert row.total_w / row.paper_total_w < 10
            assert row.paper_total_w / row.total_w < 10

    def test_paper_scale_lut_counts(self):
        # SVHN (P=6) needs no decomposition: the analytical count is exactly 2660
        assert paper_scale_physical_luts("svhn") == 2660
        # P=8 designs pay the 4x decomposition before pruning
        assert paper_scale_physical_luts("mnist") == 4 * (80 * 37 + 80)

    def test_pre_pruning_counts_exceed_paper(self):
        rows = run_table3(use_paper_lut_counts=False)
        by_name = {row.dataset: row for row in rows}
        # the paper's MNIST/CIFAR counts are post-pruning, so ours are larger
        assert by_name["mnist"].n_physical_luts >= 11899
        assert by_name["cifar10"].n_physical_luts >= 9650


class TestTable4:
    def test_six_operations(self):
        rows = run_table4()
        assert len(rows) == 6

    def test_totals_column(self):
        rows = run_table4()
        by_name = {row[0]: row for row in rows}
        assert by_name["Multiplication (float)"][6] == pytest.approx(0.099)
        assert by_name["Addition (16 bits)"][6] == pytest.approx(0.062)


class TestTable5:
    def test_counts_match_paper_exactly(self):
        rows = run_table5()
        additions, multiplications, paper = rows
        assert additions[1:] == [267_264, 18_915_328, 5_263_360]
        assert multiplications[1:] == [267_264, 18_915_328, 5_263_360]
        assert paper[1:] == [267_264, 18_915_328, 5_263_360]


class TestTable6:
    def test_five_techniques(self):
        rows = run_table6()
        assert [row.technique for row in rows] == [
            "vanilla",
            "1-bit quant",
            "16-bit quant",
            "32-bit quant",
            "poet-bin",
        ]

    def test_poetbin_smallest_on_every_dataset(self):
        rows = {row.technique: row for row in run_table6()}
        for dataset in ("mnist", "cifar10", "svhn"):
            poetbin = getattr(rows["poet-bin"], dataset)
            for technique in ("vanilla", "1-bit quant", "16-bit quant", "32-bit quant"):
                assert poetbin < getattr(rows[technique], dataset)

    def test_arithmetic_energies_match_paper_within_15_percent(self):
        """The float/16/32-bit estimates are pure Table 4 x Table 5 arithmetic.

        The SVHN 16-bit entry is excluded: the paper's 1.0e-4 J figure is only
        consistent with a 10 ns clock period while every other entry uses
        16 ns; our uniform 16 ns estimate gives 1.7e-4 J (documented in
        EXPERIMENTS.md).
        """
        rows = {row.technique: row for row in run_table6()}
        for technique in ("vanilla", "16-bit quant", "32-bit quant"):
            for dataset in ("mnist", "cifar10", "svhn"):
                if technique == "16-bit quant" and dataset == "svhn":
                    continue
                ours = getattr(rows[technique], dataset)
                paper = PAPER_TABLE6[technique][dataset]
                assert ours == pytest.approx(paper, rel=0.15)

    def test_orders_of_magnitude_match_paper(self):
        """Every entry lands within one order of magnitude of the paper's value."""
        rows = {row.technique: row for row in run_table6()}
        for technique, paper_values in PAPER_TABLE6.items():
            for dataset, paper_value in paper_values.items():
                ours = getattr(rows[technique], dataset)
                assert abs(math.log10(ours) - math.log10(paper_value)) < 1.0

    def test_reduction_summary_headline_numbers(self):
        summary = {row[0]: row for row in energy_reduction_summary()}
        # §4.2: "up to six orders of magnitude vs float, up to three vs binary"
        assert summary["cifar10"][1] > 1e5  # vs vanilla float
        assert summary["cifar10"][3] > 1e2  # vs 1-bit
        assert summary["mnist"][3] > 2  # MNIST vs 1-bit is a modest factor


class TestTable7:
    def test_three_rows(self):
        rows = run_table7()
        assert [row.dataset for row in rows] == ["mnist", "cifar10", "svhn"]

    def test_latency_nanosecond_regime(self):
        for row in run_table7():
            assert 2.0 < row.latency_ns < 25.0

    def test_svhn_fastest(self):
        rows = {row.dataset: row for row in run_table7()}
        assert rows["svhn"].latency_ns < rows["mnist"].latency_ns
        assert rows["svhn"].latency_ns < rows["cifar10"].latency_ns

    def test_svhn_lut_count_exact(self):
        rows = {row.dataset: row for row in run_table7()}
        assert rows["svhn"].luts == 2660

    def test_lut_ordering_before_pruning(self):
        """Pre-pruning, CIFAR-10 (40 trees/module) exceeds MNIST (32); SVHN is smallest.

        The paper's post-synthesis counts invert MNIST/CIFAR-10 because the
        synthesizer removes ~36% of the CIFAR-10 LUTs (§4.3); the analytical
        table reports the pre-pruning structure, which the paper text also
        quotes as the starting point.
        """
        rows = {row.dataset: row for row in run_table7()}
        assert rows["cifar10"].luts > rows["mnist"].luts > rows["svhn"].luts

    def test_p8_designs_slower_than_p6(self):
        rows = {row.dataset: row for row in run_table7()}
        assert rows["mnist"].latency_ns == pytest.approx(rows["cifar10"].latency_ns)
        assert rows["mnist"].latency_ns > rows["svhn"].latency_ns

    def test_latency_close_to_paper(self):
        """Latency estimates fall within ~40% of the paper's measurements."""
        for row in run_table7():
            assert row.latency_ns == pytest.approx(row.paper_latency_ns, rel=0.4)

    def test_throughput_headline_numbers(self):
        """§4.3: throughput reaches >100M images/s, highest for the SVHN design."""
        rows = {row.dataset: row for row in run_table7()}
        assert rows["svhn"].throughput_m_images_per_s > 150
        assert rows["mnist"].throughput_m_images_per_s > 80
        assert (
            rows["svhn"].throughput_m_images_per_s
            > rows["mnist"].throughput_m_images_per_s
        )


class TestReporting:
    def test_rows_to_table_renders_dataclasses(self):
        text = rows_to_table(TABLE6_HEADERS, run_table6())
        assert "poet-bin" in text
        assert "MNIST (J)" in text

    def test_markdown_mode(self):
        text = rows_to_table(TABLE6_HEADERS, run_table6(), markdown=True)
        assert text.startswith("| Technique")

    def test_plain_lists_accepted(self):
        text = rows_to_table(["a", "b"], [[1, 2], [3, 4]])
        assert "3" in text

    def test_table2_headers_cover_all_columns(self):
        assert len(TABLE2_HEADERS) == 10
