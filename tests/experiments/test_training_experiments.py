"""Slower integration tests: Table 2 and the ablations at the smallest scale."""

import numpy as np
import pytest

from repro.experiments import run_table2
from repro.experiments.ablations import (
    run_hidden_layer_ablation,
    run_lut_width_ablation,
    run_quantisation_ablation,
)
from repro.experiments.table2_accuracy import TABLE2_HEADERS


@pytest.fixture(scope="module")
def table2_mnist_row():
    rows = run_table2(datasets=("mnist",), seed=0, fast=True, n_train=600, n_test=200)
    return rows[0]


class TestTable2Smoke:
    def test_row_structure(self, table2_mnist_row):
        row = table2_mnist_row
        assert row.architecture == "M1"
        assert len(row.as_cells()) == len(TABLE2_HEADERS)

    def test_accuracies_are_percentages(self, table2_mnist_row):
        row = table2_mnist_row
        for value in (row.vanilla, row.binary_features, row.teacher, row.poetbin):
            assert 0.0 <= value <= 100.0

    def test_vanilla_beats_chance(self, table2_mnist_row):
        assert table2_mnist_row.vanilla > 20.0  # chance is 10%

    def test_baselines_computed(self, table2_mnist_row):
        row = table2_mnist_row
        assert not np.isnan(row.binarynet)
        assert not np.isnan(row.polybinn)
        assert not np.isnan(row.ndf)

    def test_poetbin_within_band_of_teacher(self, table2_mnist_row):
        """A4 tracks A3 (the paper sees gaps of a few points either way)."""
        row = table2_mnist_row
        assert row.poetbin > row.teacher - 35.0


class TestAblations:
    def test_lut_width_ablation_rows(self):
        rows = run_lut_width_ablation(widths=(4, 6), seed=0, fast=True)
        assert [row.setting for row in rows] == ["P=4", "P=6"]
        # wider LUTs never cost fewer physical LUTs
        assert rows[1].luts >= rows[0].luts
        for row in rows:
            assert 40.0 < row.accuracy_percent <= 100.0

    def test_hidden_layer_ablation_structure(self):
        rows = run_hidden_layer_ablation(
            n_classes=4, intermediate_per_class=2, hidden_neurons=12, seed=0, fast=True
        )
        assert len(rows) == 2
        # the hidden-neuron variant uses more LUTs (the paper's §4.1 point)
        assert rows[1].luts > 0
        for row in rows:
            assert 0.0 <= row.accuracy_percent <= 100.0

    def test_quantisation_ablation_reuses_workflow(self, table2_mnist_row):
        # build a tiny workflow result directly rather than re-running Table 2
        from repro.core import ClassifierSpec, PoETBiNWorkflow
        from repro.datasets import make_synthetic_mnist
        from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU

        data = make_synthetic_mnist(n_train=400, n_test=150, seed=1)
        spec = ClassifierSpec(
            n_classes=10,
            hidden_sizes=(48,),
            lut_inputs=4,
            rinc_levels=1,
            rinc_branching=(2,),
            intermediate_per_class=2,
        )
        workflow = PoETBiNWorkflow(
            feature_extractor_factory=lambda: [
                Conv2D(1, 4, kernel_size=5, stride=2, seed=0),
                ReLU(),
                MaxPool2D(2),
                Flatten(),
                Dense(4 * 6 * 6, 48, seed=1),
            ],
            feature_dim=48,
            spec=spec,
            epochs=3,
            output_epochs=8,
            seed=0,
        )
        result = workflow.run(data)
        rows = run_quantisation_ablation(result, bit_widths=(4, 8), seed=0)
        assert [row.setting for row in rows] == ["q=4", "q=8"]
        # more precision never uses fewer LUTs
        assert rows[1].luts > rows[0].luts
