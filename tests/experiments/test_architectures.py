"""Tests for the Table 1 architecture registry."""

import pytest

from repro.experiments import ARCHITECTURES, get_architecture, reduced_experiment_settings


class TestRegistry:
    def test_three_architectures(self):
        assert set(ARCHITECTURES) == {"mnist", "cifar10", "svhn"}

    def test_symbols(self):
        assert get_architecture("mnist").symbol == "M1"
        assert get_architecture("cifar10").symbol == "C1"
        assert get_architecture("svhn").symbol == "S1"

    def test_lookup_normalises_names(self):
        assert get_architecture("CIFAR-10").symbol == "C1"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_architecture("imagenet")

    def test_classifier_layers_match_table1(self):
        assert get_architecture("mnist").classifier_layers == (512, 512, 10)
        assert get_architecture("cifar10").classifier_layers == (512, 4096, 4096, 10)
        assert get_architecture("svhn").classifier_layers == (512, 2048, 2048, 10)

    def test_lut_inputs_match_paper(self):
        assert get_architecture("mnist").lut_inputs == 8
        assert get_architecture("svhn").lut_inputs == 6

    def test_tree_counts_match_paper(self):
        assert get_architecture("mnist").n_decision_trees == 32
        assert get_architecture("cifar10").n_decision_trees == 40
        assert get_architecture("svhn").n_decision_trees == 36


class TestDerivedQuantities:
    def test_branching_factorisation(self):
        assert get_architecture("mnist").rinc_branching == (4, 8)
        assert get_architecture("cifar10").rinc_branching == (5, 8)
        assert get_architecture("svhn").rinc_branching == (6, 6)

    def test_intermediate_width(self):
        assert get_architecture("mnist").n_intermediate_neurons == 80
        assert get_architecture("svhn").n_intermediate_neurons == 60

    def test_svhn_classifier_luts_match_section_4_3(self):
        """The §4.3 manual count: 43 LUTs per RINC-2, 2660 total for SVHN."""
        arch = get_architecture("svhn")
        assert arch.paper_rinc_luts() == 43
        assert arch.paper_classifier_luts() == 2660

    def test_paper_reference_energy_consistency(self):
        """Paper energy = paper power x clock period for each dataset."""
        for arch in ARCHITECTURES.values():
            period = 1.0 / arch.paper.clock_hz
            assert arch.paper.total_power_w * period == pytest.approx(
                arch.paper.poetbin_energy_j, rel=0.05
            )


class TestReducedSettings:
    def test_settings_build(self):
        settings = reduced_experiment_settings("mnist", fast=True)
        assert settings.feature_dim == 128
        assert settings.spec.n_classes == 10
        layers = settings.feature_extractor_factory()
        assert len(layers) == 5

    def test_fast_shrinks_sizes(self):
        fast = reduced_experiment_settings("svhn", fast=True)
        full = reduced_experiment_settings("svhn", fast=False)
        assert fast.dataset_kwargs["n_train"] < full.dataset_kwargs["n_train"]
        assert fast.epochs < full.epochs

    def test_feature_extractor_output_dims(self):
        """The declared feature_dim matches what the layers actually produce."""
        import numpy as np

        for name, shape in (("mnist", (2, 28, 28, 1)), ("cifar10", (2, 32, 32, 3))):
            settings = reduced_experiment_settings(name, fast=True)
            layers = settings.feature_extractor_factory()
            x = np.random.default_rng(0).normal(size=shape)
            for layer in layers:
                x = layer.forward(x)
            assert x.shape == (2, settings.feature_dim)
