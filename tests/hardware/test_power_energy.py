"""Tests for the power and energy models (Tables 4, 5, 6 and 3)."""

import numpy as np
import pytest

from repro.hardware import (
    SPARTAN6_OPERATIONS,
    BinaryNeuronPowerModel,
    EnergyModel,
    PoETBiNPowerModel,
    count_classifier_operations,
)
from repro.hardware.power_model import (
    DEFAULT_CLOCK_PERIOD_S,
    classifier_energy_per_inference,
)

# the paper's classifier-portion layer widths (input features -> ... -> classes)
MNIST_LAYERS = [512, 512, 10]
CIFAR_LAYERS = [512, 4096, 4096, 10]
SVHN_LAYERS = [512, 2048, 2048, 10]


class TestOperationLibrary:
    def test_table4_totals(self):
        # total column of Table 4 is the sum of the components
        assert SPARTAN6_OPERATIONS["mult16"].total == pytest.approx(0.058)
        assert SPARTAN6_OPERATIONS["add16"].total == pytest.approx(0.062)
        assert SPARTAN6_OPERATIONS["mult32"].total == pytest.approx(0.076)
        assert SPARTAN6_OPERATIONS["add32"].total == pytest.approx(0.088)
        assert SPARTAN6_OPERATIONS["mult_float"].total == pytest.approx(0.099)
        assert SPARTAN6_OPERATIONS["add_float"].total == pytest.approx(0.083)

    def test_compute_power_is_logic_plus_signal(self):
        op = SPARTAN6_OPERATIONS["mult_float"]
        assert op.compute == pytest.approx(op.logic + op.signal)

    def test_float_ops_cost_more_than_fixed(self):
        assert (
            SPARTAN6_OPERATIONS["mult_float"].compute
            > SPARTAN6_OPERATIONS["mult32"].compute
            >= SPARTAN6_OPERATIONS["mult16"].compute
        )


class TestOperationCounts:
    def test_table5_mnist(self):
        counts = count_classifier_operations(MNIST_LAYERS)
        assert counts.multiplications == 267_264
        assert counts.additions == 267_264

    def test_table5_cifar(self):
        counts = count_classifier_operations(CIFAR_LAYERS)
        assert counts.multiplications == 18_915_328

    def test_table5_svhn(self):
        counts = count_classifier_operations(SVHN_LAYERS)
        assert counts.multiplications == 5_263_360

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            count_classifier_operations([512])
        with pytest.raises(ValueError):
            count_classifier_operations([512, 0, 10])


class TestClassifierEnergy:
    def test_vanilla_mnist_matches_table6_order(self):
        counts = count_classifier_operations(MNIST_LAYERS)
        energy = classifier_energy_per_inference(counts, "float")
        # paper: 8.0e-5 J
        assert energy == pytest.approx(8.0e-5, rel=0.1)

    def test_32bit_mnist(self):
        counts = count_classifier_operations(MNIST_LAYERS)
        energy = classifier_energy_per_inference(counts, "32")
        assert energy == pytest.approx(1.7e-5, rel=0.1)

    def test_16bit_mnist(self):
        counts = count_classifier_operations(MNIST_LAYERS)
        energy = classifier_energy_per_inference(counts, "16")
        assert energy == pytest.approx(8.5e-6, rel=0.1)

    def test_vanilla_cifar(self):
        counts = count_classifier_operations(CIFAR_LAYERS)
        energy = classifier_energy_per_inference(counts, "float")
        assert energy == pytest.approx(5.7e-3, rel=0.1)

    def test_precision_ordering(self):
        counts = count_classifier_operations(SVHN_LAYERS)
        e_float = classifier_energy_per_inference(counts, "float")
        e32 = classifier_energy_per_inference(counts, "32")
        e16 = classifier_energy_per_inference(counts, "16")
        assert e_float > e32 > e16

    def test_invalid_precision(self):
        counts = count_classifier_operations(MNIST_LAYERS)
        with pytest.raises(ValueError):
            classifier_energy_per_inference(counts, "8")


class TestBinaryNeuronModel:
    def test_paper_mnist_neuron_power(self):
        model = BinaryNeuronPowerModel()
        # 522 neurons of 512 inputs at 26 mW -> 13.572 W (§4.2)
        power = model.classifier_power(MNIST_LAYERS)
        assert power == pytest.approx(13.572, rel=0.01)

    def test_paper_mnist_energy(self):
        model = BinaryNeuronPowerModel()
        energy = model.classifier_energy_per_inference(MNIST_LAYERS)
        assert energy == pytest.approx(2.1e-7, rel=0.05)

    def test_power_scales_with_fan_in(self):
        model = BinaryNeuronPowerModel()
        assert model.neuron_power(1024) == pytest.approx(2 * model.neuron_power(512))

    def test_invalid_fan_in(self):
        with pytest.raises(ValueError):
            BinaryNeuronPowerModel().neuron_power(0)

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            BinaryNeuronPowerModel().classifier_power([10])


class TestPoETBiNPowerModel:
    def test_energy_in_nanojoule_regime(self):
        model = PoETBiNPowerModel()
        for n_luts, clock in ((11899, 62.5e6), (9650, 62.5e6), (2660, 100e6)):
            energy = model.energy_per_inference(n_luts, clock)
            assert 1e-10 < energy < 1e-7

    def test_power_report_fields(self):
        report = PoETBiNPowerModel().power_report(2660, 100e6)
        assert report["total_w"] == pytest.approx(
            report["dynamic_w"] + report["static_w"]
        )
        assert 0.01 < report["total_w"] < 2.0

    def test_dynamic_power_scales_with_luts(self):
        model = PoETBiNPowerModel()
        assert model.dynamic_power(10000, 62.5e6) > model.dynamic_power(1000, 62.5e6)

    def test_invalid_args(self):
        model = PoETBiNPowerModel()
        with pytest.raises(ValueError):
            model.dynamic_power(0, 62.5e6)
        with pytest.raises(ValueError):
            model.dynamic_power(100, 0)
        with pytest.raises(ValueError):
            model.static_power(0)


class TestEnergyModel:
    def test_table6_ordering_all_datasets(self):
        """PoET-BiN << 1-bit << 16-bit < 32-bit < float, on every architecture."""
        model = EnergyModel()
        for layers, luts, clock in (
            (MNIST_LAYERS, 11899, 62.5e6),
            (CIFAR_LAYERS, 9650, 62.5e6),
            (SVHN_LAYERS, 2660, 100e6),
        ):
            breakdown = model.breakdown(layers, luts, clock)
            assert breakdown.poetbin < breakdown.quant_1bit
            assert breakdown.quant_1bit < breakdown.quant_16bit
            assert breakdown.quant_16bit < breakdown.quant_32bit
            assert breakdown.quant_32bit < breakdown.vanilla_float

    def test_mnist_reduction_factors(self):
        """Orders of magnitude of the paper's §4.2 claims are preserved."""
        breakdown = EnergyModel().breakdown(MNIST_LAYERS, 11899, 62.5e6)
        assert breakdown.reduction_vs("vanilla") > 1e3
        assert breakdown.reduction_vs("1-bit quant") > 2

    def test_cifar_reduction_factors(self):
        breakdown = EnergyModel().breakdown(CIFAR_LAYERS, 9650, 62.5e6)
        assert breakdown.reduction_vs("vanilla") > 1e5
        assert breakdown.reduction_vs("1-bit quant") > 1e2

    def test_as_dict_keys(self):
        breakdown = EnergyModel().breakdown(MNIST_LAYERS, 1000, 62.5e6)
        assert set(breakdown.as_dict()) == {
            "vanilla",
            "1-bit quant",
            "16-bit quant",
            "32-bit quant",
            "poet-bin",
        }

    def test_invalid_clock_period(self):
        with pytest.raises(ValueError):
            EnergyModel(clock_period_s=0.0)
