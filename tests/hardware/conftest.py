"""Shared fixtures for hardware tests: small trained RINC netlists."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RINCClassifier
from repro.datasets import make_binary_teacher_task


@pytest.fixture(scope="package")
def small_teacher_task():
    return make_binary_teacher_task(
        n_train=1200, n_test=300, n_features=80, n_active=16, seed=21
    )


@pytest.fixture(scope="package")
def rinc2_netlist(small_teacher_task):
    """A trained RINC-2 (P=4, branching 3x4) flattened to a netlist."""
    data = small_teacher_task
    rinc = RINCClassifier(n_inputs=4, n_levels=2, branching=[3, 4]).fit(
        data.X_train, data.y_train
    )
    netlist, signal = rinc.to_netlist(n_primary_inputs=data.X_train.shape[1])
    netlist.mark_output(signal)
    return netlist


@pytest.fixture(scope="package")
def wide_rinc_netlist(small_teacher_task):
    """A RINC-1 with 8-input LUTs (wider than the physical 6-input LUTs)."""
    data = small_teacher_task
    rinc = RINCClassifier(n_inputs=8, n_levels=1, branching=[4]).fit(
        data.X_train, data.y_train
    )
    netlist, signal = rinc.to_netlist(n_primary_inputs=data.X_train.shape[1])
    netlist.mark_output(signal)
    return netlist
