"""Tests for the latency model."""

import pytest

from repro.hardware import LatencyModel


class TestPathLatency:
    def test_monotone_in_stages(self):
        model = LatencyModel()
        latencies = [model.path_latency(n) for n in range(1, 8)]
        assert all(a < b for a, b in zip(latencies, latencies[1:]))

    def test_zero_stages_is_io_only(self):
        model = LatencyModel(io_delay_s=2e-9)
        assert model.path_latency(0) == pytest.approx(2e-9)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel().path_latency(-1)

    def test_nanosecond_regime_for_paper_depths(self):
        """Depths of 4-7 physical LUT levels land in the paper's 5-10 ns range."""
        model = LatencyModel()
        assert 3e-9 < model.path_latency(4) < 12e-9
        assert 3e-9 < model.path_latency(7) < 15e-9


class TestNetlistLatency:
    def test_p8_slower_than_p4(self, rinc2_netlist, wide_rinc_netlist):
        """Wider logical LUTs lengthen the physical critical path (P=8 vs P=6)."""
        model = LatencyModel()
        narrow = model.netlist_latency(rinc2_netlist)
        wide = model.netlist_latency(wide_rinc_netlist)
        assert wide > narrow * 0.99  # wide netlist pays the mux levels

    def test_output_layer_adds_delay(self, rinc2_netlist):
        model = LatencyModel()
        with_output = model.netlist_latency(rinc2_netlist, include_output_layer=True)
        without = model.netlist_latency(rinc2_netlist, include_output_layer=False)
        assert with_output > without


class TestClockSelection:
    def test_max_clock(self):
        model = LatencyModel()
        assert model.max_clock_hz(10e-9) == pytest.approx(1e8)

    def test_supported_clock_picks_highest_feasible(self):
        model = LatencyModel()
        assert model.supported_clock_hz(8e-9) == pytest.approx(100e6)
        assert model.supported_clock_hz(12e-9) == pytest.approx(62.5e6)

    def test_supported_clock_falls_back_to_slowest(self):
        model = LatencyModel()
        assert model.supported_clock_hz(1.0) == pytest.approx(25e6)

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            LatencyModel().max_clock_hz(0.0)
