"""Golden-file regression tests for the HDL generators.

Engine-driven netlist refactors must not silently change the emitted HDL:
the generators' output for a small fixed netlist is committed under
``tests/hardware/golden/`` and compared verbatim.  If a change to the emitted
text is *intentional*, regenerate the fixtures with::

    PYTHONPATH=src python tests/hardware/test_golden_codegen.py --regenerate
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.core import LUTNetlist
from repro.hardware import generate_verilog, generate_vhdl

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def golden_netlist() -> LUTNetlist:
    """Small fixed netlist covering every codegen feature.

    Includes multiple LUT widths, both node kinds, a multi-level path, a
    name needing sanitisation, and a primary input declared as an output.
    """
    netlist = LUTNetlist(n_primary_inputs=4)
    netlist.add_node("t0", "rinc0", ["in0", "in1"], np.array([0, 1, 1, 0]))
    netlist.add_node("t1", "rinc0", ["in2", "in3", "in0"], np.arange(8) % 2)
    netlist.add_node(
        "N2-mat.out", "mat", ["t0", "t1", "in1"], np.array([0, 0, 0, 1, 0, 1, 1, 1])
    )
    netlist.add_node("stage2", "rinc0", ["N2-mat.out"], np.array([0, 1]))
    netlist.mark_output("stage2")
    netlist.mark_output("in3")
    return netlist


def _check(generated: str, filename: str) -> None:
    golden_path = GOLDEN_DIR / filename
    expected = golden_path.read_text()
    assert generated == expected, (
        f"{filename} drifted from the committed golden file.\n"
        f"If the change is intentional, regenerate with:\n"
        f"  PYTHONPATH=src python {__file__} --regenerate"
    )


def test_verilog_matches_golden():
    _check(generate_verilog(golden_netlist(), module_name="golden_dut"), "golden_dut.v")


def test_vhdl_matches_golden():
    _check(generate_vhdl(golden_netlist(), entity_name="golden_dut"), "golden_dut.vhd")


def _regenerate() -> None:  # pragma: no cover - maintenance helper
    GOLDEN_DIR.mkdir(exist_ok=True)
    netlist = golden_netlist()
    (GOLDEN_DIR / "golden_dut.v").write_text(
        generate_verilog(netlist, module_name="golden_dut")
    )
    (GOLDEN_DIR / "golden_dut.vhd").write_text(
        generate_vhdl(netlist, entity_name="golden_dut")
    )
    print(f"regenerated golden files in {GOLDEN_DIR}")


if __name__ == "__main__":  # pragma: no cover
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
