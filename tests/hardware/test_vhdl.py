"""Tests for VHDL and testbench generation."""

import numpy as np
import pytest

from repro.core import LUTNetlist
from repro.hardware import generate_testbench, generate_vhdl
from repro.hardware.vhdl.codegen import _vhdl_identifier


def _small_netlist():
    netlist = LUTNetlist(n_primary_inputs=3)
    netlist.add_node("xor01", "rinc0", ["in0", "in1"], np.array([0, 1, 1, 0]))
    netlist.add_node("and2", "mat", ["xor01", "in2"], np.array([0, 0, 0, 1]))
    netlist.mark_output("and2")
    return netlist


class TestIdentifierSanitisation:
    def test_lowercased(self):
        assert _vhdl_identifier("Node1") == "node1"

    def test_special_characters_replaced(self):
        assert _vhdl_identifier("n0_mat-out.x") == "n0_mat_out_x"

    def test_leading_digit_prefixed(self):
        assert _vhdl_identifier("0node").startswith("s_")


class TestGenerateVhdl:
    def test_contains_entity_and_architecture(self):
        code = generate_vhdl(_small_netlist(), entity_name="classifier")
        assert "entity classifier is" in code
        assert "architecture lut_network of classifier" in code
        assert "end architecture lut_network;" in code

    def test_port_widths(self):
        code = generate_vhdl(_small_netlist())
        assert "features : in  std_logic_vector(2 downto 0);" in code
        assert "outputs  : out std_logic_vector(0 downto 0)" in code

    def test_one_constant_per_node(self):
        code = generate_vhdl(_small_netlist())
        assert code.count("constant table_") == 2

    def test_truth_tables_embedded(self):
        code = generate_vhdl(_small_netlist())
        assert '"0110"' in code  # XOR table
        assert '"0001"' in code  # AND table

    def test_outputs_wired(self):
        code = generate_vhdl(_small_netlist())
        assert "outputs(0) <= and2;" in code

    def test_requires_outputs(self):
        netlist = LUTNetlist(n_primary_inputs=2)
        netlist.add_node("a", "rinc0", ["in0"], np.array([0, 1]))
        with pytest.raises(ValueError):
            generate_vhdl(netlist)

    def test_trained_rinc_netlist_generates(self, rinc2_netlist):
        code = generate_vhdl(rinc2_netlist, entity_name="rinc_module")
        # one lookup assignment per node plus the output assignment
        assert code.count("<=") == rinc2_netlist.n_luts + len(rinc2_netlist.output_signals)
        assert f"std_logic_vector({rinc2_netlist.n_primary_inputs - 1} downto 0)" in code


class TestGenerateTestbench:
    def test_contains_dut_and_asserts(self):
        netlist = _small_netlist()
        stimulus = np.array([[0, 0, 1], [1, 0, 1], [1, 1, 1]], dtype=np.uint8)
        bench = generate_testbench(netlist, stimulus, entity_name="classifier")
        assert "entity work.classifier" in bench
        assert bench.count("assert outputs =") == 3
        assert "severity error" in bench

    def test_expected_values_match_simulation(self):
        netlist = _small_netlist()
        stimulus = np.array([[1, 0, 1]], dtype=np.uint8)  # xor=1, and in2=1 -> 1
        bench = generate_testbench(netlist, stimulus)
        assert 'assert outputs = "1"' in bench

    def test_wrong_stimulus_width_rejected(self):
        with pytest.raises(ValueError):
            generate_testbench(_small_netlist(), np.zeros((2, 5), dtype=np.uint8))

    def test_empty_stimulus_rejected(self):
        with pytest.raises(ValueError):
            generate_testbench(_small_netlist(), np.zeros((0, 3), dtype=np.uint8))

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            generate_testbench(
                _small_netlist(), np.zeros((1, 3), dtype=np.uint8), check_interval_ns=0
            )

    def test_feature_vector_bit_order(self):
        """features(i) in the testbench literal corresponds to primary input i."""
        netlist = LUTNetlist(n_primary_inputs=3)
        netlist.add_node("buf", "rinc0", ["in2"], np.array([0, 1]))
        netlist.mark_output("buf")
        stimulus = np.array([[0, 0, 1]], dtype=np.uint8)  # only in2 is high
        bench = generate_testbench(netlist, stimulus)
        # VHDL literal is MSB (index 2) first -> "100"
        assert 'features <= "100";' in bench
        assert 'assert outputs = "1"' in bench
