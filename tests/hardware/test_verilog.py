"""Tests for Verilog and Verilog-testbench generation."""

import numpy as np
import pytest

from repro.core import LUTNetlist
from repro.hardware import generate_verilog, generate_verilog_testbench
from repro.hardware.verilog.codegen import verilog_identifier


def _small_netlist():
    netlist = LUTNetlist(n_primary_inputs=3)
    netlist.add_node("xor01", "rinc0", ["in0", "in1"], np.array([0, 1, 1, 0]))
    netlist.add_node("and2", "mat", ["xor01", "in2"], np.array([0, 0, 0, 1]))
    netlist.mark_output("and2")
    return netlist


class TestIdentifier:
    def test_lowercased_and_sanitised(self):
        assert verilog_identifier("N0-mat.out") == "n0_mat_out"

    def test_leading_digit(self):
        assert verilog_identifier("0node").startswith("s_")

    def test_leading_underscore_allowed(self):
        assert verilog_identifier("_temp") == "_temp"


class TestGenerateVerilog:
    def test_module_structure(self):
        code = generate_verilog(_small_netlist(), module_name="classifier")
        assert "module classifier (" in code
        assert "endmodule" in code
        assert "input  wire [2:0] features" in code
        assert "output wire [0:0] outputs" in code

    def test_truth_tables_embedded_lsb_first(self):
        code = generate_verilog(_small_netlist())
        # XOR table [0,1,1,0] -> literal with address 0 as the LSB: 0110
        assert "4'b0110" in code
        # AND table [0,0,0,1] -> 1000
        assert "4'b1000" in code

    def test_one_assign_per_node_plus_outputs(self):
        netlist = _small_netlist()
        code = generate_verilog(netlist)
        assert code.count("assign ") == netlist.n_luts + len(netlist.output_signals)

    def test_requires_outputs(self):
        netlist = LUTNetlist(n_primary_inputs=2)
        netlist.add_node("a", "rinc0", ["in0"], np.array([0, 1]))
        with pytest.raises(ValueError):
            generate_verilog(netlist)

    def test_trained_rinc_netlist_generates(self, rinc2_netlist):
        code = generate_verilog(rinc2_netlist, module_name="rinc_module")
        assert f"[{rinc2_netlist.n_primary_inputs - 1}:0] features" in code
        assert code.count("localparam") == rinc2_netlist.n_luts

    def test_matches_vhdl_backend_tables(self, rinc2_netlist):
        """Both backends embed the same truth tables for the same netlist."""
        from repro.hardware import generate_vhdl

        verilog = generate_verilog(rinc2_netlist)
        vhdl = generate_vhdl(rinc2_netlist)
        for node in rinc2_netlist.nodes:
            vhdl_literal = '"' + "".join(str(int(b)) for b in node.table) + '"'
            verilog_literal = (
                f"{len(node.table)}'b" + "".join(str(int(b)) for b in reversed(node.table))
            )
            assert vhdl_literal in vhdl
            assert verilog_literal in verilog


class TestGenerateVerilogTestbench:
    def test_contains_dut_and_checks(self):
        netlist = _small_netlist()
        stimulus = np.array([[0, 0, 1], [1, 0, 1]], dtype=np.uint8)
        bench = generate_verilog_testbench(netlist, stimulus, module_name="classifier")
        assert "classifier dut" in bench
        assert bench.count("if (outputs !==") == 2
        assert "$finish;" in bench

    def test_expected_value_matches_simulation(self):
        netlist = _small_netlist()
        stimulus = np.array([[1, 0, 1]], dtype=np.uint8)  # xor=1 and in2=1 -> 1
        bench = generate_verilog_testbench(netlist, stimulus)
        assert "if (outputs !== 1'b1)" in bench

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            generate_verilog_testbench(_small_netlist(), np.zeros((1, 7), dtype=np.uint8))

    def test_empty_stimulus_rejected(self):
        with pytest.raises(ValueError):
            generate_verilog_testbench(_small_netlist(), np.zeros((0, 3), dtype=np.uint8))

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            generate_verilog_testbench(
                _small_netlist(), np.zeros((1, 3), dtype=np.uint8), check_interval_ns=0
            )

    def test_feature_bit_order(self):
        """features[i] corresponds to primary input i in the stimulus literal."""
        netlist = LUTNetlist(n_primary_inputs=3)
        netlist.add_node("buf", "rinc0", ["in2"], np.array([0, 1]))
        netlist.mark_output("buf")
        stimulus = np.array([[0, 0, 1]], dtype=np.uint8)  # only in2 high
        bench = generate_verilog_testbench(netlist, stimulus)
        assert "features = 3'b100;" in bench
        assert "if (outputs !== 1'b1)" in bench
