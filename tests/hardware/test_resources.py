"""Tests for the resource model and synthesizer-style pruning."""

import numpy as np
import pytest

from repro.core import LUTNetlist, MATModule, RINCClassifier
from repro.hardware import prune_netlist, resource_report
from repro.hardware.resources import output_layer_luts


class TestOutputLayerLuts:
    def test_paper_value(self):
        # 10 classes x 8 bits = 80 LUTs (§4.3)
        assert output_layer_luts(10, 8) == 80

    def test_invalid(self):
        with pytest.raises(ValueError):
            output_layer_luts(0, 8)


class TestPaperLutCounts:
    def test_svhn_manual_calculation(self):
        """Reproduce the §4.3 arithmetic: 43 LUTs per RINC-2, 2660 total."""
        per_module = RINCClassifier.full_lut_count(6, 2)
        assert per_module == 43
        total = per_module * 60 + output_layer_luts(10, 8)
        assert total == 2660


_TREE_TABLES = [
    np.array([0, 1, 1, 0]),
    np.array([0, 0, 0, 1]),
    np.array([0, 1, 0, 1]),
    np.array([1, 0, 0, 1]),
]


def _netlist_with_weak_mat(weights):
    """2-input trees feeding one MAT whose metadata carries the given weights."""
    weights = np.asarray(weights, dtype=float)
    netlist = LUTNetlist(n_primary_inputs=2 * len(weights))
    tree_names = []
    for idx in range(len(weights)):
        name = f"t{idx}"
        netlist.add_node(
            name,
            "rinc0",
            [f"in{2 * idx}", f"in{2 * idx + 1}"],
            _TREE_TABLES[idx % len(_TREE_TABLES)],
        )
        tree_names.append(name)
    mat = MATModule(weights=weights)
    netlist.add_node(
        "mat",
        "mat",
        tree_names,
        mat.to_lut().table,
        {"weights": weights, "threshold": 0.0},
    )
    netlist.mark_output("mat")
    return netlist


class TestPruneNetlist:
    def test_no_pruning_with_balanced_weights(self):
        netlist = _netlist_with_weak_mat([1.0, 1.0, 1.0])
        pruned = prune_netlist(netlist)
        assert pruned.n_luts == netlist.n_luts

    def test_dominant_weight_prunes_all_others(self):
        # a weight of 2.0 outvotes the other two regardless of their outputs,
        # so both of their trees are dead logic
        netlist = _netlist_with_weak_mat([2.0, 1.0, 1e-9])
        pruned = prune_netlist(netlist)
        assert pruned.n_luts == 2  # surviving tree + MAT
        remaining = [node.name for node in pruned.nodes]
        assert "t1" not in remaining and "t2" not in remaining

    def test_negligible_weight_tree_removed(self):
        # weights 1.0/1.0/0.9 all interact, only the 1e-9 tree is dead logic
        netlist = _netlist_with_weak_mat([1.0, 1.0, 0.9, 1e-9])
        pruned = prune_netlist(netlist)
        assert pruned.n_luts == netlist.n_luts - 1
        assert "t3" not in [node.name for node in pruned.nodes]

    @pytest.mark.parametrize(
        "weights", [[2.0, 1.0, 1e-9], [1.0, 1.0, 0.9, 1e-9], [1.0, 1.0, 1.0]]
    )
    def test_pruned_netlist_equivalent(self, weights):
        netlist = _netlist_with_weak_mat(weights)
        pruned = prune_netlist(netlist)
        from repro.utils.bitops import enumerate_binary_inputs

        X = enumerate_binary_inputs(netlist.n_primary_inputs)
        np.testing.assert_array_equal(
            netlist.evaluate_outputs(X), pruned.evaluate_outputs(X)
        )

    def test_unreferenced_node_removed(self):
        netlist = LUTNetlist(n_primary_inputs=2)
        netlist.add_node("used", "rinc0", ["in0"], np.array([0, 1]))
        netlist.add_node("dead", "rinc0", ["in1"], np.array([0, 1]))
        netlist.mark_output("used")
        pruned = prune_netlist(netlist)
        assert [node.name for node in pruned.nodes] == ["used"]

    def test_trained_rinc_netlist_survives_pruning(self, rinc2_netlist, small_teacher_task):
        pruned = prune_netlist(rinc2_netlist)
        X = small_teacher_task.X_test
        np.testing.assert_array_equal(
            rinc2_netlist.evaluate_outputs(X), pruned.evaluate_outputs(X)
        )
        assert pruned.n_luts <= rinc2_netlist.n_luts


class TestResourceReport:
    def test_report_fields(self, rinc2_netlist):
        report = resource_report(rinc2_netlist, n_classes=10, output_bits=8)
        assert report.logical_luts > 0
        assert report.physical_luts >= report.logical_luts
        assert report.output_layer_luts == 80
        assert report.total_physical_luts == report.physical_luts + 80
        assert 0.0 <= report.pruned_fraction <= 1.0

    def test_wide_luts_cost_more_physical(self, wide_rinc_netlist):
        report = resource_report(wide_rinc_netlist, prune=False)
        # the four 8-input tree LUTs cost four physical LUTs each; the 4-input
        # MAT LUT still fits in one
        assert report.luts_by_kind == {"rinc0": 4, "mat": 1}
        assert report.physical_luts == 4 * 4 + 1

    def test_narrow_luts_one_to_one(self, rinc2_netlist):
        report = resource_report(rinc2_netlist, prune=False)
        assert report.physical_luts == report.logical_luts

    def test_pruning_reported(self):
        netlist = _netlist_with_weak_mat([1.0, 1.0, 0.9, 1e-9])
        report = resource_report(netlist)
        assert report.pruned_luts == 1
        assert report.pruned_fraction == pytest.approx(1 / 5)

    def test_kind_counts(self, rinc2_netlist):
        report = resource_report(rinc2_netlist, prune=False)
        assert report.luts_by_kind["rinc0"] == 12  # 3 subgroups x 4 trees
        assert report.luts_by_kind["mat"] == 4  # 3 inner + 1 outer
