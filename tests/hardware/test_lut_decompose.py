"""Tests for wide-LUT decomposition."""

import numpy as np
import pytest

from repro.core import LUT, LUTNetlist
from repro.hardware import decompose_lut, decompose_netlist, luts6_required
from repro.utils.bitops import enumerate_binary_inputs


class TestLuts6Required:
    @pytest.mark.parametrize("n_inputs,expected", [(1, 1), (4, 1), (6, 1), (7, 2), (8, 4), (10, 16)])
    def test_xilinx_counts(self, n_inputs, expected):
        assert luts6_required(n_inputs) == expected

    def test_paper_claim_for_p8(self):
        """Each 8-input LUT requires four 6-input Xilinx LUTs (§4.2)."""
        assert luts6_required(8, 6) == 4

    def test_other_physical_width(self):
        assert luts6_required(6, 4) == 4

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            luts6_required(0)
        with pytest.raises(ValueError):
            luts6_required(4, max_inputs=1)


class TestDecomposeLut:
    def test_narrow_lut_untouched(self, rng):
        lut = LUT(input_indices=np.arange(4), table=(rng.random(16) < 0.5).astype(np.uint8))
        cofactors, muxes = decompose_lut(lut, max_inputs=6)
        assert cofactors == [lut]
        assert muxes == []

    def test_wide_lut_cofactor_count(self, rng):
        lut = LUT(input_indices=np.arange(8), table=(rng.random(256) < 0.5).astype(np.uint8))
        cofactors, muxes = decompose_lut(lut, max_inputs=6)
        assert len(cofactors) == 4
        assert len(muxes) == 3  # a binary tree of muxes over 4 cofactors

    def test_cofactor_width_bounded(self, rng):
        lut = LUT(input_indices=np.arange(9), table=(rng.random(512) < 0.5).astype(np.uint8))
        cofactors, _ = decompose_lut(lut, max_inputs=6)
        assert all(c.n_inputs <= 6 for c in cofactors)

    def test_invalid_max_inputs(self, rng):
        lut = LUT(input_indices=np.arange(3), table=np.zeros(8, dtype=np.uint8))
        with pytest.raises(ValueError):
            decompose_lut(lut, max_inputs=1)


class TestDecomposeNetlist:
    def _random_wide_netlist(self, rng, n_inputs=8):
        netlist = LUTNetlist(n_primary_inputs=n_inputs)
        table = (rng.random(2**n_inputs) < 0.5).astype(np.uint8)
        netlist.add_node("wide", "rinc0", [f"in{i}" for i in range(n_inputs)], table)
        netlist.mark_output("wide")
        return netlist

    def test_functional_equivalence(self, rng):
        netlist = self._random_wide_netlist(rng)
        decomposed = decompose_netlist(netlist, max_inputs=6)
        X = enumerate_binary_inputs(8)
        np.testing.assert_array_equal(
            netlist.evaluate_outputs(X), decomposed.evaluate_outputs(X)
        )

    def test_all_nodes_within_width(self, rng):
        decomposed = decompose_netlist(self._random_wide_netlist(rng), max_inputs=6)
        assert all(node.n_inputs <= 6 for node in decomposed.nodes)

    def test_mux_nodes_created(self, rng):
        decomposed = decompose_netlist(self._random_wide_netlist(rng), max_inputs=6)
        kinds = decomposed.count_by_kind()
        assert kinds.get("mux", 0) == 3
        assert kinds.get("rinc0", 0) == 4

    def test_narrow_netlist_unchanged(self, rng):
        netlist = LUTNetlist(n_primary_inputs=4)
        netlist.add_node("a", "rinc0", ["in0", "in1"], np.array([0, 1, 1, 0]))
        netlist.mark_output("a")
        decomposed = decompose_netlist(netlist, max_inputs=6)
        assert decomposed.n_luts == 1

    def test_rinc_netlist_equivalence(self, wide_rinc_netlist, small_teacher_task):
        """Decomposing a trained P=8 RINC netlist preserves its predictions."""
        X = small_teacher_task.X_test
        decomposed = decompose_netlist(wide_rinc_netlist, max_inputs=6)
        np.testing.assert_array_equal(
            wide_rinc_netlist.evaluate_outputs(X), decomposed.evaluate_outputs(X)
        )
        assert all(node.n_inputs <= 6 for node in decomposed.nodes)

    def test_depth_increases_after_decomposition(self, wide_rinc_netlist):
        decomposed = decompose_netlist(wide_rinc_netlist, max_inputs=6)
        assert decomposed.logic_depth() > wide_rinc_netlist.logic_depth()
