"""Tests for the memory-image export."""

import numpy as np
import pytest

from repro.core import LUTNetlist
from repro.hardware import (
    netlist_memory_images,
    total_memory_bits,
    write_memory_files,
)
from repro.hardware.memory_image import node_memory_image


def _netlist():
    netlist = LUTNetlist(n_primary_inputs=3)
    netlist.add_node("xor", "rinc0", ["in0", "in1"], np.array([0, 1, 1, 0]))
    netlist.add_node("and3", "mat", ["xor", "in2"], np.array([0, 0, 0, 1]))
    netlist.mark_output("and3")
    return netlist


class TestMemoryImage:
    def test_words_match_table(self):
        netlist = _netlist()
        image = node_memory_image(netlist.get_node("xor"))
        np.testing.assert_array_equal(image.words, [0, 1, 1, 0])
        assert image.depth == 4
        assert image.address_bits == 2

    def test_binary_lines(self):
        image = node_memory_image(_netlist().get_node("xor"))
        assert image.as_binary_lines() == ["0", "1", "1", "0"]

    def test_hex_lines(self):
        image = node_memory_image(_netlist().get_node("and3"))
        assert image.as_hex_lines() == ["0", "0", "0", "1"]

    def test_hex_invalid_width(self):
        image = node_memory_image(_netlist().get_node("xor"))
        with pytest.raises(ValueError):
            image.as_hex_lines(word_bits=0)


class TestNetlistExport:
    def test_images_for_every_node(self):
        images = netlist_memory_images(_netlist())
        assert set(images) == {"xor", "and3"}

    def test_total_memory_bits(self):
        assert total_memory_bits(_netlist()) == 8

    def test_paper_sizing_example(self):
        """§2.1.1: a single 30-input table would need 2^30 bits (a gigabit)."""
        assert 2**30 == 1_073_741_824  # the quantity the paper's argument refers to
        # whereas a full RINC-2 with P=6 needs only 43 x 64 bits
        assert 43 * 64 == 2752

    def test_write_memory_files(self, tmp_path):
        paths = write_memory_files(_netlist(), tmp_path)
        assert len(paths) == 2
        content = (tmp_path / "xor.mem").read_text().splitlines()
        assert content == ["0", "1", "1", "0"]
