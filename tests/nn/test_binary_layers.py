"""Tests for BinaryDense and the XNOR/popcount inference path."""

import numpy as np
import pytest

from repro.nn import Adam, BinaryDense, Dense, ReLU, Sequential, Sign, SquaredHingeLoss, Trainer
from repro.nn.layers.binary import xnor_popcount_matmul


class TestBinaryDense:
    def test_forward_uses_binarised_weights(self, rng):
        layer = BinaryDense(4, 3, use_bias=False, seed=0)
        x = rng.normal(size=(5, 4))
        out = layer.forward(x)
        expected = x @ np.where(layer.params["W"] >= 0, 1.0, -1.0)
        np.testing.assert_allclose(out, expected)

    def test_binarize_maps_zero_to_plus_one(self):
        np.testing.assert_array_equal(
            BinaryDense.binarize(np.array([-0.5, 0.0, 0.5])), [-1.0, 1.0, 1.0]
        )

    def test_gradient_blocked_for_saturated_weights(self, rng):
        layer = BinaryDense(3, 2, use_bias=False, seed=0)
        layer.params["W"][0, 0] = 2.0  # saturated shadow weight
        x = rng.normal(size=(4, 3))
        layer.forward(x)
        layer.backward(np.ones((4, 2)))
        assert layer.grads["W"][0, 0] == 0.0

    def test_clip_weights(self):
        layer = BinaryDense(3, 2, seed=0)
        layer.params["W"][:] = 5.0
        layer.clip_weights()
        assert layer.params["W"].max() <= 1.0

    def test_invalid_shapes(self, rng):
        layer = BinaryDense(4, 2, seed=0)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(3, 5)))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            BinaryDense(3, 2, seed=0).backward(np.zeros((1, 2)))

    def test_binary_network_learns(self, rng):
        """A BinaryNet-style classifier trains on a simple separable task."""
        n = 300
        X = rng.normal(size=(n, 8))
        y = (X[:, 0] + X[:, 1] > 0).astype(np.int64)
        model = Sequential(
            [Dense(8, 32, seed=0), ReLU(), BinaryDense(32, 16, seed=1), Sign(), Dense(16, 2, seed=2)]
        )
        trainer = Trainer(
            model,
            SquaredHingeLoss(),
            Adam(model.layers, learning_rate=0.01),
            clip_binary_weights=True,
            seed=0,
        )
        trainer.fit(X, y, epochs=20, batch_size=32)
        assert trainer.evaluate(X, y) > 0.85
        # shadow weights stay clipped
        assert np.all(np.abs(model.layers[2].params["W"]) <= 1.0)


class TestXnorPopcount:
    def test_matches_pm1_dot_product(self, rng):
        x_bits = (rng.random((10, 16)) < 0.5).astype(np.int64)
        w_bits = (rng.random((16, 4)) < 0.5).astype(np.int64)
        result = xnor_popcount_matmul(x_bits, w_bits)
        x_pm = 2 * x_bits - 1
        w_pm = 2 * w_bits - 1
        np.testing.assert_array_equal(result, x_pm @ w_pm)

    def test_all_match_gives_n(self):
        x = np.ones((1, 8), dtype=np.int64)
        w = np.ones((8, 1), dtype=np.int64)
        assert xnor_popcount_matmul(x, w)[0, 0] == 8

    def test_all_mismatch_gives_minus_n(self):
        x = np.ones((1, 8), dtype=np.int64)
        w = np.zeros((8, 1), dtype=np.int64)
        assert xnor_popcount_matmul(x, w)[0, 0] == -8

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            xnor_popcount_matmul(np.array([[2]]), np.array([[1]]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            xnor_popcount_matmul(np.ones((2, 3), dtype=int), np.ones((4, 1), dtype=int))
