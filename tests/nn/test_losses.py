"""Tests for loss functions."""

import numpy as np
import pytest

from repro.nn.losses import CrossEntropyLoss, SquaredHingeLoss, one_hot_signed
from tests.nn.gradcheck import numerical_gradient


class TestOneHotSigned:
    def test_values(self):
        targets = one_hot_signed(np.array([0, 2]), 3)
        np.testing.assert_array_equal(targets, [[1, -1, -1], [-1, -1, 1]])

    def test_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            one_hot_signed(np.array([3]), 3)


class TestSquaredHingeLoss:
    def test_zero_loss_with_large_margins(self):
        loss = SquaredHingeLoss()
        scores = np.array([[5.0, -5.0], [-5.0, 5.0]])
        value, grad = loss(scores, np.array([0, 1]))
        assert value == 0.0
        np.testing.assert_array_equal(grad, 0.0)

    def test_known_value(self):
        loss = SquaredHingeLoss()
        scores = np.array([[0.0, 0.0]])
        value, _ = loss(scores, np.array([0]))
        # both margins are max(0, 1-0)^2 = 1, summed = 2
        assert value == pytest.approx(2.0)

    def test_gradient_matches_numerical(self, rng):
        loss = SquaredHingeLoss()
        scores = rng.normal(size=(5, 4))
        labels = rng.integers(0, 4, size=5)
        _, grad = loss(scores, labels)
        numeric = numerical_gradient(lambda s: loss(s, labels)[0], scores.copy())
        np.testing.assert_allclose(grad, numeric, rtol=1e-5, atol=1e-7)

    def test_rejects_1d_scores(self):
        with pytest.raises(ValueError):
            SquaredHingeLoss()(np.zeros(3), np.zeros(3, dtype=int))


class TestCrossEntropyLoss:
    def test_perfect_prediction_low_loss(self):
        loss = CrossEntropyLoss()
        scores = np.array([[10.0, -10.0], [-10.0, 10.0]])
        value, _ = loss(scores, np.array([0, 1]))
        assert value < 1e-6

    def test_uniform_prediction_loss(self):
        loss = CrossEntropyLoss()
        scores = np.zeros((4, 10))
        value, _ = loss(scores, np.zeros(4, dtype=int))
        assert value == pytest.approx(np.log(10), rel=1e-6)

    def test_gradient_matches_numerical(self, rng):
        loss = CrossEntropyLoss()
        scores = rng.normal(size=(4, 3))
        labels = rng.integers(0, 3, size=4)
        _, grad = loss(scores, labels)
        numeric = numerical_gradient(lambda s: loss(s, labels)[0], scores.copy())
        np.testing.assert_allclose(grad, numeric, rtol=1e-5, atol=1e-7)

    def test_gradient_rows_sum_to_zero(self, rng):
        loss = CrossEntropyLoss()
        scores = rng.normal(size=(6, 5))
        labels = rng.integers(0, 5, size=6)
        _, grad = loss(scores, labels)
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)
