"""Tests for Conv2D, MaxPool2D and BatchNorm."""

import numpy as np
import pytest

from repro.nn import BatchNorm, Conv2D, MaxPool2D
from repro.nn.layers.conv import col2im, im2col
from tests.nn.gradcheck import check_layer_input_gradient, check_layer_param_gradients


class TestIm2Col:
    def test_output_shape(self, rng):
        x = rng.normal(size=(2, 5, 5, 3))
        cols, out_h, out_w = im2col(x, kernel=3, stride=1, padding=0)
        assert (out_h, out_w) == (3, 3)
        assert cols.shape == (2 * 9, 27)

    def test_padding_increases_output(self, rng):
        x = rng.normal(size=(1, 4, 4, 1))
        _, out_h, _ = im2col(x, kernel=3, stride=1, padding=1)
        assert out_h == 4

    def test_known_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 4, 4, 1)
        cols, out_h, out_w = im2col(x, kernel=2, stride=2, padding=0)
        assert (out_h, out_w) == (2, 2)
        np.testing.assert_array_equal(cols[0], [0, 1, 4, 5])
        np.testing.assert_array_equal(cols[3], [10, 11, 14, 15])

    def test_kernel_too_large(self, rng):
        with pytest.raises(ValueError):
            im2col(rng.normal(size=(1, 2, 2, 1)), kernel=5, stride=1, padding=0)

    def test_col2im_adjoint_property(self, rng):
        """col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>."""
        x = rng.normal(size=(2, 6, 6, 2))
        cols, out_h, out_w = im2col(x, kernel=3, stride=1, padding=1)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        back = col2im(y, x.shape, kernel=3, stride=1, padding=1, out_h=out_h, out_w=out_w)
        rhs = float(np.sum(x * back))
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestConv2D:
    def test_output_shape(self, rng):
        layer = Conv2D(3, 8, kernel_size=3, padding=1, seed=0)
        out = layer.forward(rng.normal(size=(2, 8, 8, 3)))
        assert out.shape == (2, 8, 8, 8)

    def test_stride_reduces_size(self, rng):
        layer = Conv2D(1, 2, kernel_size=3, stride=2, seed=0)
        out = layer.forward(rng.normal(size=(1, 9, 9, 1)))
        assert out.shape == (1, 4, 4, 2)

    def test_input_gradient(self, rng):
        layer = Conv2D(2, 3, kernel_size=3, padding=1, seed=0)
        check_layer_input_gradient(layer, rng.normal(size=(2, 4, 4, 2)))

    def test_param_gradients(self, rng):
        layer = Conv2D(1, 2, kernel_size=2, seed=0)
        check_layer_param_gradients(layer, rng.normal(size=(2, 4, 4, 1)))

    def test_wrong_channels_rejected(self, rng):
        layer = Conv2D(3, 4, seed=0)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(1, 5, 5, 2)))

    def test_matches_manual_convolution(self, rng):
        layer = Conv2D(1, 1, kernel_size=2, use_bias=False, seed=0)
        x = rng.normal(size=(1, 3, 3, 1))
        out = layer.forward(x)
        w = layer.params["W"].reshape(2, 2)
        expected = np.zeros((2, 2))
        for i in range(2):
            for j in range(2):
                expected[i, j] = np.sum(x[0, i : i + 2, j : j + 2, 0] * w)
        np.testing.assert_allclose(out[0, :, :, 0], expected)


class TestMaxPool2D:
    def test_output_shape(self, rng):
        layer = MaxPool2D(2)
        out = layer.forward(rng.normal(size=(2, 8, 8, 3)))
        assert out.shape == (2, 4, 4, 3)

    def test_values(self):
        layer = MaxPool2D(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 4, 4, 1)
        out = layer.forward(x)
        np.testing.assert_array_equal(out[0, :, :, 0], [[5, 7], [13, 15]])

    def test_gradient(self, rng):
        layer = MaxPool2D(2)
        # distinct values avoid ties so the numerical gradient is well defined
        x = rng.permutation(32).astype(np.float64).reshape(1, 4, 4, 2)
        check_layer_input_gradient(layer, x)

    def test_truncates_odd_sizes(self, rng):
        layer = MaxPool2D(2)
        out = layer.forward(rng.normal(size=(1, 5, 5, 1)))
        assert out.shape == (1, 2, 2, 1)

    def test_too_small_input_rejected(self, rng):
        layer = MaxPool2D(4)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(1, 2, 2, 1)))


class TestBatchNorm:
    def test_normalises_batch(self, rng):
        layer = BatchNorm(6)
        x = rng.normal(loc=3.0, scale=2.0, size=(100, 6))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_used_in_inference(self, rng):
        layer = BatchNorm(4, momentum=0.0)
        x = rng.normal(loc=1.0, size=(50, 4))
        layer.forward(x, training=True)
        out = layer.forward(x, training=False)
        assert np.abs(out.mean()) < 0.5

    def test_input_gradient(self, rng):
        layer = BatchNorm(3)
        check_layer_input_gradient(layer, rng.normal(size=(6, 3)), rtol=1e-3, atol=1e-5)

    def test_param_gradients(self, rng):
        layer = BatchNorm(3)
        check_layer_param_gradients(layer, rng.normal(size=(5, 3)), rtol=1e-3, atol=1e-5)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BatchNorm(0)
        with pytest.raises(ValueError):
            BatchNorm(3, momentum=1.5)
