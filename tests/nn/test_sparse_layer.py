"""Tests for the block-sparse dense layer."""

import numpy as np
import pytest

from repro.nn import Adam, BlockSparseDense, Sequential, SquaredHingeLoss, Trainer
from tests.nn.gradcheck import check_layer_input_gradient


class TestStructure:
    def test_input_width(self):
        layer = BlockSparseDense(n_outputs=4, fan_in=3, seed=0)
        assert layer.in_features == 12
        assert layer.out_features == 4

    def test_off_block_weights_are_zero(self):
        layer = BlockSparseDense(n_outputs=3, fan_in=2, seed=0)
        W = layer.params["W"]
        assert W[0, 1] == 0.0 and W[0, 2] == 0.0
        assert W[2, 0] == 0.0
        assert W[0, 0] != 0.0 or W[1, 0] != 0.0

    def test_block_weights_shape(self):
        layer = BlockSparseDense(n_outputs=5, fan_in=4, seed=0)
        assert layer.block_weights().shape == (5, 4)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BlockSparseDense(n_outputs=0, fan_in=3)
        with pytest.raises(ValueError):
            BlockSparseDense(n_outputs=3, fan_in=0)


class TestBehaviour:
    def test_output_depends_only_on_own_block(self, rng):
        layer = BlockSparseDense(n_outputs=3, fan_in=4, seed=0)
        x = rng.normal(size=(5, 12))
        base = layer.forward(x)
        perturbed = x.copy()
        perturbed[:, 4:8] += 10.0  # block of output 1
        out = layer.forward(perturbed)
        np.testing.assert_allclose(out[:, 0], base[:, 0])
        np.testing.assert_allclose(out[:, 2], base[:, 2])
        assert not np.allclose(out[:, 1], base[:, 1])

    def test_gradients_respect_mask(self, rng):
        layer = BlockSparseDense(n_outputs=3, fan_in=2, seed=0)
        x = rng.normal(size=(4, 6))
        layer.forward(x, training=True)
        layer.backward(rng.normal(size=(4, 3)))
        np.testing.assert_array_equal(layer.grads["W"] * (1 - layer._mask), 0.0)

    def test_input_gradient(self, rng):
        layer = BlockSparseDense(n_outputs=2, fan_in=3, seed=0)
        check_layer_input_gradient(layer, rng.normal(size=(4, 6)))

    def test_training_keeps_sparsity(self, rng):
        layer = BlockSparseDense(n_outputs=3, fan_in=4, seed=0)
        model = Sequential([layer])
        X = rng.normal(size=(120, 12))
        y = rng.integers(0, 3, size=120)
        trainer = Trainer(model, SquaredHingeLoss(), Adam(model.layers, learning_rate=0.05), seed=0)
        trainer.fit(X, y, epochs=5, batch_size=32)
        np.testing.assert_array_equal(layer.params["W"] * (1 - layer._mask), 0.0)

    def test_learns_block_aligned_task(self, rng):
        """Each class is indicated by the sum of its own input block."""
        n, n_classes, fan_in = 400, 4, 3
        X = rng.normal(size=(n, n_classes * fan_in))
        block_sums = X.reshape(n, n_classes, fan_in).sum(axis=2)
        y = np.argmax(block_sums, axis=1)
        layer = BlockSparseDense(n_outputs=n_classes, fan_in=fan_in, seed=0)
        model = Sequential([layer])
        trainer = Trainer(model, SquaredHingeLoss(), Adam(model.layers, learning_rate=0.05), seed=0)
        trainer.fit(X, y, epochs=20, batch_size=32)
        assert trainer.evaluate(X, y) > 0.9
