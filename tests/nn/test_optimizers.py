"""Tests for optimizers and learning-rate schedules."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, ConstantSchedule, Dense, ExponentialDecay, StepDecay


def _quadratic_step(layer, optimizer, target):
    """One gradient step of ||W - target||^2 / 2."""
    layer.grads["W"] = layer.params["W"] - target
    layer.grads["b"] = np.zeros_like(layer.params["b"])
    optimizer.step()


class TestSGD:
    def test_converges_on_quadratic(self):
        layer = Dense(3, 2, seed=0)
        target = np.full((3, 2), 0.5)
        opt = SGD([layer], learning_rate=0.2)
        for _ in range(200):
            _quadratic_step(layer, opt, target)
        np.testing.assert_allclose(layer.params["W"], target, atol=1e-6)

    def test_momentum_accelerates(self):
        def distance_after(momentum, steps=20):
            layer = Dense(3, 2, seed=0)
            target = np.full((3, 2), 0.5)
            opt = SGD([layer], learning_rate=0.01, momentum=momentum)
            for _ in range(steps):
                _quadratic_step(layer, opt, target)
            return np.linalg.norm(layer.params["W"] - target)

        assert distance_after(0.9) < distance_after(0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Dense(2, 2, seed=0)], momentum=1.0)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Dense(2, 2, seed=0)], learning_rate=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        layer = Dense(3, 2, seed=0)
        target = np.full((3, 2), -0.25)
        opt = Adam([layer], learning_rate=0.05)
        for _ in range(500):
            _quadratic_step(layer, opt, target)
        np.testing.assert_allclose(layer.params["W"], target, atol=1e-3)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Dense(2, 2, seed=0)], beta1=1.0)

    def test_skips_parameterless_layers(self):
        from repro.nn import ReLU

        opt = Adam([ReLU(), Dense(2, 2, seed=0)])
        assert len(opt.layers) == 1


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.1)
        assert schedule.learning_rate(0) == 0.1
        assert schedule.learning_rate(50) == 0.1

    def test_exponential_decay(self):
        schedule = ExponentialDecay(1.0, decay=0.5)
        assert schedule.learning_rate(0) == 1.0
        assert schedule.learning_rate(2) == pytest.approx(0.25)

    def test_exponential_is_monotone(self):
        schedule = ExponentialDecay(0.01, decay=0.9)
        rates = [schedule.learning_rate(e) for e in range(10)]
        assert all(a > b for a, b in zip(rates, rates[1:]))

    def test_step_decay(self):
        schedule = StepDecay(1.0, step_size=10, factor=10.0)
        assert schedule.learning_rate(9) == 1.0
        assert schedule.learning_rate(10) == pytest.approx(0.1)
        assert schedule.learning_rate(25) == pytest.approx(0.01)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ExponentialDecay(1.0, decay=0.0)
        with pytest.raises(ValueError):
            StepDecay(1.0, step_size=0)
        with pytest.raises(ValueError):
            ConstantSchedule(-1.0)
        with pytest.raises(ValueError):
            ConstantSchedule(1.0).learning_rate(-1)
