"""Numerical gradient checking helpers for layer tests."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.layers.base import Layer


def numerical_gradient(
    func: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = func(x)
        flat[i] = original - eps
        minus = func(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_layer_input_gradient(
    layer: Layer, x: np.ndarray, rtol: float = 1e-4, atol: float = 1e-6
) -> None:
    """Assert that layer.backward matches the numerical input gradient.

    The scalar objective is ``sum(forward(x) * R)`` for a fixed random
    projection ``R``, whose analytic input gradient is ``backward(R)``.
    """
    rng = np.random.default_rng(0)
    out = layer.forward(x.copy(), training=True)
    projection = rng.normal(size=out.shape)

    def objective(arr: np.ndarray) -> float:
        return float(np.sum(layer.forward(arr, training=True) * projection))

    # Re-run forward on the original input so cached state matches x before backward.
    layer.forward(x.copy(), training=True)
    analytic = layer.backward(projection)
    numeric = numerical_gradient(objective, x.copy().astype(np.float64))
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


def check_layer_param_gradients(
    layer: Layer, x: np.ndarray, rtol: float = 1e-4, atol: float = 1e-6
) -> None:
    """Assert that accumulated parameter gradients match numerical gradients."""
    rng = np.random.default_rng(1)
    out = layer.forward(x, training=True)
    projection = rng.normal(size=out.shape)
    layer.zero_grads()
    layer.forward(x, training=True)
    layer.backward(projection)
    analytic = {name: grad.copy() for name, grad in layer.grads.items()}

    for name in layer.params:
        def objective(arr: np.ndarray, _name: str = name) -> float:
            return float(np.sum(layer.forward(x, training=True) * projection))

        numeric = numerical_gradient(objective, layer.params[name])
        np.testing.assert_allclose(
            analytic[name], numeric, rtol=rtol, atol=atol, err_msg=f"parameter {name!r}"
        )
