"""Tests for Dense, Flatten, Dropout and activation layers."""

import numpy as np
import pytest

from repro.nn import BinarySigmoid, Dense, Dropout, Flatten, HardTanh, ReLU, Sign
from tests.nn.gradcheck import check_layer_input_gradient, check_layer_param_gradients


class TestDense:
    def test_output_shape(self, rng):
        layer = Dense(8, 4, seed=0)
        out = layer.forward(rng.normal(size=(5, 8)))
        assert out.shape == (5, 4)

    def test_input_gradient(self, rng):
        layer = Dense(6, 3, seed=0)
        check_layer_input_gradient(layer, rng.normal(size=(4, 6)))

    def test_param_gradients(self, rng):
        layer = Dense(5, 3, seed=0)
        check_layer_param_gradients(layer, rng.normal(size=(4, 5)))

    def test_no_bias(self, rng):
        layer = Dense(4, 2, use_bias=False, seed=0)
        assert "b" not in layer.params
        check_layer_param_gradients(layer, rng.normal(size=(3, 4)))

    def test_wrong_input_shape_rejected(self, rng):
        layer = Dense(4, 2, seed=0)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(3, 5)))

    def test_backward_before_forward_rejected(self):
        layer = Dense(4, 2, seed=0)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            Dense(0, 3)

    def test_n_parameters(self):
        layer = Dense(4, 3, seed=0)
        assert layer.n_parameters == 4 * 3 + 3


class TestReLU:
    def test_forward_values(self):
        layer = ReLU()
        out = layer.forward(np.array([[-1.0, 0.5]]))
        np.testing.assert_array_equal(out, [[0.0, 0.5]])

    def test_gradient(self, rng):
        layer = ReLU()
        x = rng.normal(size=(4, 6)) + 0.05  # keep away from the kink
        check_layer_input_gradient(layer, x)


class TestHardTanh:
    def test_forward_clipping(self):
        layer = HardTanh()
        out = layer.forward(np.array([[-2.0, 0.3, 2.0]]))
        np.testing.assert_array_equal(out, [[-1.0, 0.3, 1.0]])

    def test_gradient_inside_region(self, rng):
        layer = HardTanh()
        x = rng.uniform(-0.9, 0.9, size=(3, 5))
        check_layer_input_gradient(layer, x)

    def test_gradient_blocked_outside(self):
        layer = HardTanh()
        layer.forward(np.array([[2.0, -2.0]]))
        grad = layer.backward(np.array([[1.0, 1.0]]))
        np.testing.assert_array_equal(grad, [[0.0, 0.0]])


class TestBinarySigmoid:
    def test_output_is_binary(self, rng):
        layer = BinarySigmoid()
        out = layer.forward(rng.normal(size=(10, 7)))
        assert set(np.unique(out)) <= {0.0, 1.0}

    def test_threshold_at_zero(self):
        layer = BinarySigmoid()
        out = layer.forward(np.array([[-0.1, 0.0, 0.1]]))
        np.testing.assert_array_equal(out, [[0.0, 1.0, 1.0]])

    def test_straight_through_gradient(self):
        layer = BinarySigmoid(slope=0.5)
        layer.forward(np.array([[0.5, 5.0]]))
        grad = layer.backward(np.array([[1.0, 1.0]]))
        np.testing.assert_array_equal(grad, [[0.5, 0.0]])

    def test_invalid_slope(self):
        with pytest.raises(ValueError):
            BinarySigmoid(slope=0.0)


class TestSign:
    def test_output_is_pm1(self, rng):
        layer = Sign()
        out = layer.forward(rng.normal(size=(6, 4)))
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_straight_through_gradient(self):
        layer = Sign()
        layer.forward(np.array([[0.5, 3.0]]))
        grad = layer.backward(np.array([[1.0, 1.0]]))
        np.testing.assert_array_equal(grad, [[1.0, 0.0]])


class TestFlatten:
    def test_round_trip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(3, 4, 4, 2))
        out = layer.forward(x)
        assert out.shape == (3, 32)
        back = layer.backward(out)
        assert back.shape == x.shape

    def test_gradient(self, rng):
        layer = Flatten()
        check_layer_input_gradient(layer, rng.normal(size=(2, 3, 3, 1)))


class TestDropout:
    def test_inference_is_identity(self, rng):
        layer = Dropout(rate=0.5, seed=0)
        x = rng.normal(size=(5, 10))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_training_zeroes_fraction(self):
        layer = Dropout(rate=0.5, seed=0)
        x = np.ones((200, 50))
        out = layer.forward(x, training=True)
        dropped = np.mean(out == 0)
        assert 0.4 < dropped < 0.6

    def test_scaling_preserves_expectation(self):
        layer = Dropout(rate=0.3, seed=1)
        x = np.ones((500, 40))
        out = layer.forward(x, training=True)
        assert abs(out.mean() - 1.0) < 0.05

    def test_backward_uses_same_mask(self):
        layer = Dropout(rate=0.5, seed=2)
        x = np.ones((10, 10))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad == 0, out == 0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(rate=1.0)
