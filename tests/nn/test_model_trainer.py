"""Integration tests: Sequential model + Trainer learn simple tasks."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    BinarySigmoid,
    CrossEntropyLoss,
    Dense,
    ExponentialDecay,
    ReLU,
    Sequential,
    SquaredHingeLoss,
    Trainer,
)


def _make_blobs(rng, n_per_class=100, n_classes=3, n_features=4, spread=0.4):
    centers = rng.normal(scale=2.0, size=(n_classes, n_features))
    X = np.concatenate(
        [centers[c] + rng.normal(scale=spread, size=(n_per_class, n_features)) for c in range(n_classes)]
    )
    y = np.repeat(np.arange(n_classes), n_per_class)
    order = rng.permutation(len(y))
    return X[order], y[order]


class TestSequential:
    def test_forward_shape(self, rng):
        model = Sequential([Dense(4, 8, seed=0), ReLU(), Dense(8, 3, seed=1)])
        assert model.forward(rng.normal(size=(5, 4))).shape == (5, 3)

    def test_requires_layers(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_predict_batched_matches_full(self, rng):
        model = Sequential([Dense(4, 6, seed=0), ReLU(), Dense(6, 2, seed=1)])
        X = rng.normal(size=(25, 4))
        np.testing.assert_allclose(
            model.predict_scores(X), model.predict_scores(X, batch_size=7)
        )

    def test_activations_at_intermediate_layer(self, rng):
        model = Sequential([Dense(4, 6, seed=0), BinarySigmoid(), Dense(6, 2, seed=1)])
        X = rng.normal(size=(10, 4))
        acts = model.activations_at(X, 1)
        assert acts.shape == (10, 6)
        assert set(np.unique(acts)) <= {0.0, 1.0}

    def test_activations_at_negative_index(self, rng):
        model = Sequential([Dense(4, 6, seed=0), ReLU()])
        X = rng.normal(size=(3, 4))
        np.testing.assert_allclose(model.activations_at(X, -1), model.forward(X))

    def test_activations_at_out_of_range(self, rng):
        model = Sequential([Dense(4, 6, seed=0)])
        with pytest.raises(IndexError):
            model.activations_at(rng.normal(size=(2, 4)), 5)

    def test_get_set_parameters_round_trip(self, rng):
        model = Sequential([Dense(4, 3, seed=0)])
        saved = model.get_parameters()
        X = rng.normal(size=(5, 4))
        before = model.forward(X)
        model.layers[0].params["W"] += 1.0
        assert not np.allclose(model.forward(X), before)
        model.set_parameters(saved)
        np.testing.assert_allclose(model.forward(X), before)

    def test_set_parameters_validates_shapes(self):
        model = Sequential([Dense(4, 3, seed=0)])
        bad = [{"W": np.zeros((2, 2)), "b": np.zeros(3)}]
        with pytest.raises(ValueError):
            model.set_parameters(bad)

    def test_n_parameters(self):
        model = Sequential([Dense(4, 3, seed=0), ReLU(), Dense(3, 2, seed=0)])
        assert model.n_parameters == (4 * 3 + 3) + (3 * 2 + 2)


class TestTrainer:
    def test_learns_blobs_with_hinge_loss(self, rng):
        X, y = _make_blobs(rng)
        model = Sequential([Dense(4, 16, seed=0), ReLU(), Dense(16, 3, seed=1)])
        trainer = Trainer(
            model,
            SquaredHingeLoss(),
            Adam(model.layers, learning_rate=0.01),
            schedule=ExponentialDecay(0.01, 0.97),
            seed=0,
        )
        history = trainer.fit(X, y, epochs=15, batch_size=32)
        assert history.n_epochs == 15
        assert trainer.evaluate(X, y) > 0.9

    def test_learns_with_cross_entropy(self, rng):
        X, y = _make_blobs(rng, n_per_class=60)
        model = Sequential([Dense(4, 12, seed=0), ReLU(), Dense(12, 3, seed=1)])
        trainer = Trainer(model, CrossEntropyLoss(), Adam(model.layers, learning_rate=0.01), seed=0)
        trainer.fit(X, y, epochs=15, batch_size=32)
        assert trainer.evaluate(X, y) > 0.9

    def test_validation_curve_recorded(self, rng):
        X, y = _make_blobs(rng, n_per_class=50)
        model = Sequential([Dense(4, 8, seed=0), ReLU(), Dense(8, 3, seed=1)])
        trainer = Trainer(model, SquaredHingeLoss(), Adam(model.layers), seed=0)
        history = trainer.fit(X, y, epochs=3, batch_size=16, X_val=X[:30], y_val=y[:30])
        assert len(history.val_accuracy) == 3
        assert history.best_val_accuracy() >= max(history.val_accuracy) - 1e-12

    def test_loss_decreases(self, rng):
        X, y = _make_blobs(rng, n_per_class=60)
        model = Sequential([Dense(4, 8, seed=0), ReLU(), Dense(8, 3, seed=1)])
        trainer = Trainer(model, SquaredHingeLoss(), Adam(model.layers, learning_rate=0.01), seed=0)
        history = trainer.fit(X, y, epochs=10, batch_size=32)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_schedule_applied(self, rng):
        X, y = _make_blobs(rng, n_per_class=20)
        model = Sequential([Dense(4, 4, seed=0), ReLU(), Dense(4, 3, seed=1)])
        schedule = ExponentialDecay(0.01, 0.5)
        trainer = Trainer(model, SquaredHingeLoss(), Adam(model.layers), schedule=schedule, seed=0)
        history = trainer.fit(X, y, epochs=3, batch_size=16)
        np.testing.assert_allclose(history.learning_rates, [0.01, 0.005, 0.0025])

    def test_invalid_epochs(self, rng):
        X, y = _make_blobs(rng, n_per_class=10)
        model = Sequential([Dense(4, 3, seed=0)])
        trainer = Trainer(model, SquaredHingeLoss(), Adam(model.layers), seed=0)
        with pytest.raises(ValueError):
            trainer.fit(X, y, epochs=0)

    def test_empty_history_best_val_rejected(self):
        from repro.nn.trainer import TrainingHistory

        with pytest.raises(ValueError):
            TrainingHistory().best_val_accuracy()
