"""Shadow traffic and canary promotion: divergence evidence drives the flip.

Shadow mode mirrors answered primary traffic to a standby candidate and
records bit-exact diffs (label mismatches, confidence deltas, latency
ratios) in the family's :class:`DivergenceStore`.  ``promote_canary``
turns that evidence into an automatic verdict: a clean candidate takes the
serving pointer, a divergent one is rolled back with the primary untouched.
Reports and verdicts round-trip over *both* wire protocols — the JSON
codec and the binary OP_CONTROL frames.
"""

import numpy as np
import pytest

from repro.serving import (
    BackgroundServer,
    InferenceServer,
    ServingClient,
)
from repro.serving.registry import SERVING, STANDBY
from repro.utils.rng import as_rng

N_FEATURES = 24
N_CLASSES = 8


def version_fn(version: int):
    def batch_fn(X):
        return (np.asarray(X, dtype=np.int64).sum(axis=1) + version) % N_CLASSES

    return batch_fn


def scores_fn_for(offset: float):
    """Scores-mode variant: class scores shifted by ``offset`` on class 0
    only — argmax (labels) unchanged for small offsets, confidence delta
    exactly ``offset``."""

    def scores_fn(X):
        X = np.asarray(X, dtype=np.float64)
        base = np.stack(
            [X.sum(axis=1) + 0.01 * c for c in range(N_CLASSES)], axis=1
        )
        base[:, 0] -= 10.0  # class 0 never wins: offsets cannot flip argmax
        base[:, 0] += offset
        return base

    return scores_fn


def register(handle, *args, **kwargs):
    async def _do():
        return handle.server.register_model(*args, **kwargs)

    return handle.run(_do())


def quiesce(handle):
    async def _do():
        await handle.server.registry.wait_idle()

    handle.run(_do())


@pytest.fixture()
def server():
    srv = InferenceServer(
        max_batch=32, max_wait_us=500, max_queue=4096, max_total_queue=8192
    )
    srv.register_model("m", version_fn(1), version=1)
    with BackgroundServer(srv) as handle:
        yield handle


@pytest.fixture(params=[False, True], ids=["json", "binary"])
def client(request, server):
    with ServingClient(*server.address, binary=request.param) as c:
        yield c


class TestShadowRecording:
    def test_divergent_candidate_is_recorded(self, server, client):
        """Both protocols: mirror everything, diff everything."""
        register(server, "m", version_fn(2), version=2)
        result = client.set_shadow("m", 2, fraction=1.0)
        assert result["ok"] and result["version"] == 2
        rng = as_rng(0)
        n_requests = 10
        for _ in range(n_requests):
            X = rng.integers(0, 2, size=(7, N_FEATURES), dtype=np.uint8)
            np.testing.assert_array_equal(
                client.predict(X, model="m"), version_fn(1)(X)
            )
        quiesce(server)
        report = client.shadow_report("m")
        assert report["model"] == "m"
        assert report["serving_version"] == 1
        assert report["shadow_version"] == 2
        assert report["shadow_requests"] == n_requests
        # v2 disagrees on every row: every mirrored request diverged
        assert report["shadow_divergences"] == n_requests
        assert report["divergence_rate"] == 1.0
        assert report["mismatched_samples"] == 7 * n_requests
        assert len(report["records"]) == n_requests
        assert report["records"][0]["n_label_mismatches"] == 7
        assert report["p99_latency_ratio"] > 0

    def test_clean_candidate_records_no_divergence(self, server, client):
        register(server, "m", version_fn(1), version=2)  # bit-identical
        client.set_shadow("m", 2)
        rng = as_rng(1)
        for _ in range(5):
            X = rng.integers(0, 2, size=(3, N_FEATURES), dtype=np.uint8)
            client.predict(X, model="m")
        quiesce(server)
        report = client.shadow_report("m")
        assert report["shadow_requests"] == 5
        assert report["shadow_divergences"] == 0
        assert report["divergence_rate"] == 0.0
        assert report["records"] == []

    def test_pinned_requests_are_not_mirrored(self, server):
        register(server, "m", version_fn(2), version=2)
        with ServingClient(*server.address) as client:
            client.set_shadow("m", 2)
            rng = as_rng(2)
            X = rng.integers(0, 2, size=(4, N_FEATURES), dtype=np.uint8)
            client.predict(X, model="m@2")  # pinned to the candidate
            quiesce(server)
            assert client.shadow_report("m")["shadow_requests"] == 0

    def test_fraction_samples_a_subset(self, server):
        import random

        register(server, "m", version_fn(2), version=2)
        server.server.registry._rng = random.Random(1234)
        with ServingClient(*server.address) as client:
            client.set_shadow("m", 2, fraction=0.3)
            rng = as_rng(3)
            n_requests = 60
            for _ in range(n_requests):
                X = rng.integers(0, 2, size=(2, N_FEATURES), dtype=np.uint8)
                client.predict(X, model="m")
            quiesce(server)
            mirrored = client.shadow_report("m")["shadow_requests"]
            assert 0 < mirrored < n_requests

    def test_candidate_error_counts_as_divergence(self, server):
        def broken(X):
            raise ValueError("retrained model is broken")

        register(server, "m", broken, version=2)
        with ServingClient(*server.address) as client:
            client.set_shadow("m", 2)
            rng = as_rng(4)
            X = rng.integers(0, 2, size=(3, N_FEATURES), dtype=np.uint8)
            np.testing.assert_array_equal(
                client.predict(X, model="m"), version_fn(1)(X)
            )
            quiesce(server)
            report = client.shadow_report("m")
            assert report["shadow_errors"] == 1
            assert report["divergence_rate"] == 1.0
            assert "broken" in report["records"][0]["error"]

    def test_retarget_resets_candidate_scope_keeps_totals(self, server):
        register(server, "m", version_fn(2), version=2)
        register(server, "m", version_fn(3), version=3)
        with ServingClient(*server.address) as client:
            client.set_shadow("m", 2)
            rng = as_rng(5)
            X = rng.integers(0, 2, size=(3, N_FEATURES), dtype=np.uint8)
            client.predict(X, model="m")
            quiesce(server)
            assert client.shadow_report("m")["shadow_requests"] == 1
            client.set_shadow("m", 3)
            report = client.shadow_report("m")
            assert report["shadow_requests"] == 0  # candidate scope reset
            assert report["total_requests"] == 1  # cumulative scope survives
            assert report["shadow_version"] == 3

    def test_scores_mode_confidence_delta(self, server):
        srv = InferenceServer(max_batch=16, max_wait_us=500)
        srv.register_model("s", scores_fn=scores_fn_for(0.0), version=1)
        with BackgroundServer(srv) as handle:
            register(handle, "s", scores_fn=scores_fn_for(0.25), version=2)
            with ServingClient(*handle.address) as client:
                client.set_shadow("s", 2)
                rng = as_rng(6)
                X = rng.integers(0, 2, size=(5, N_FEATURES), dtype=np.uint8)
                client.predict(X, model="s")
                quiesce(handle)
                report = client.shadow_report("s")
                # same argmax, shifted scores: no divergence, but the
                # numeric drift is measured
                assert report["shadow_divergences"] == 0
                assert report["max_confidence_delta"] == pytest.approx(0.25)

    def test_shadow_validation(self, server, client):
        with pytest.raises(Exception):
            client.set_shadow("m", 1)  # serving version cannot shadow
        register(server, "m", version_fn(2), version=2)
        with pytest.raises(Exception):
            client.set_shadow("m", 2, fraction=0.0)
        with pytest.raises(Exception):
            client.set_shadow("m", 9)
        client.set_shadow("m", 2)
        assert client.clear_shadow("m")["version"] == 2
        assert client.clear_shadow("m")["version"] is None  # idempotent
        assert client.shadow_report("m")["shadow_version"] is None


class TestCanary:
    def drive(self, client, n_requests, seed=0, model="m"):
        rng = as_rng(seed)
        for _ in range(n_requests):
            X = rng.integers(0, 2, size=(3, N_FEATURES), dtype=np.uint8)
            client.predict(X, model=model)

    def test_auto_promote_clean_candidate(self, server, client):
        register(server, "m", version_fn(1), version=2)  # equivalent retrain
        client.set_shadow("m", 2)
        self.drive(client, 8)
        quiesce(server)
        verdict = client.promote_canary("m", 2, min_requests=8)
        assert verdict["status"] == "promoted"
        assert verdict["divergence_rate"] == 0.0
        assert verdict["observed"] >= 8
        quiesce(server)
        registry = server.server.registry
        assert registry.serving_versions()["m"] == 2
        assert registry.describe_family("m")["versions"] == [
            {"version": 2, "state": SERVING}
        ]
        events = [e["event"] for e in client.lifecycle("m")]
        assert "canary_promoted" in events

    def test_auto_rollback_divergent_candidate(self, server, client):
        """The acceptance criterion: rollback triggers and v1 still serves."""
        register(server, "m", version_fn(2), version=2)  # diverges everywhere
        client.set_shadow("m", 2)
        self.drive(client, 8)
        quiesce(server)
        verdict = client.promote_canary("m", 2, min_requests=8)
        assert verdict["status"] == "rolled_back"
        assert "divergence rate" in verdict["reason"]
        assert verdict["divergence_rate"] == 1.0
        quiesce(server)
        registry = server.server.registry
        assert registry.serving_versions()["m"] == 1
        # the candidate retired; the primary never stopped serving
        assert registry.describe_family("m")["versions"] == [
            {"version": 1, "state": SERVING}
        ]
        rng = as_rng(7)
        X = rng.integers(0, 2, size=(5, N_FEATURES), dtype=np.uint8)
        np.testing.assert_array_equal(
            client.predict(X, model="m"), version_fn(1)(X)
        )
        rolled = [
            e
            for e in client.lifecycle("m")
            if e["event"] == "canary_rolled_back"
        ]
        assert len(rolled) == 1 and rolled[0]["version"] == 2

    def test_latency_gate_rolls_back_slow_candidate(self, server):
        import time

        def slow_but_correct(X):
            time.sleep(0.05)
            return version_fn(1)(X)

        register(server, "m", slow_but_correct, version=2)
        with ServingClient(*server.address) as client:
            client.set_shadow("m", 2)
            self.drive(client, 6)
            quiesce(server)
            verdict = client.promote_canary(
                "m", 2, min_requests=6, max_p99_ratio=2.0
            )
            assert verdict["status"] == "rolled_back"
            assert "p99 latency ratio" in verdict["reason"]
            quiesce(server)
            assert server.server.registry.serving_versions()["m"] == 1

    def test_watcher_decides_when_evidence_arrives(self, server, client):
        """``watching`` status now, event-driven verdict once traffic lands."""
        import time

        register(server, "m", version_fn(1), version=2)
        pending = client.promote_canary("m", 2, min_requests=5)
        assert pending["status"] == "watching"
        assert pending["required"] == 5
        self.drive(client, 5)
        deadline = time.time() + 10
        while time.time() < deadline:
            if server.server.registry.serving_versions()["m"] == 2:
                break
            time.sleep(0.02)
        else:
            pytest.fail("canary watcher never promoted the clean candidate")
        events = [e["event"] for e in client.lifecycle("m")]
        assert "canary_started" in events
        assert "canary_promoted" in events

    def test_policy_validation_crosses_the_wire(self, server, client):
        register(server, "m", version_fn(2), version=2)
        with pytest.raises(Exception, match="min_requests"):
            client.promote_canary("m", 2, min_requests=0)
        with pytest.raises(Exception):
            client.promote_canary("m", 1)  # already serving


class TestMetricsExport:
    def test_shadow_counters_and_version_gauge(self, server):
        register(server, "m", version_fn(2), version=2)
        with ServingClient(*server.address) as client:
            client.set_shadow("m", 2)
            rng = as_rng(8)
            X = rng.integers(0, 2, size=(3, N_FEATURES), dtype=np.uint8)
            client.predict(X, model="m")
            quiesce(server)
            text = client.stats_text()
        assert 'repro_serving_model_version{model="m"} 1' in text
        assert 'repro_serving_shadow_requests{model="m"} 1' in text
        assert 'repro_serving_shadow_divergences{model="m"} 1' in text


class TestFamilyIntrospection:
    def test_list_models_shows_versions_and_shadow(self, server, client):
        register(server, "m", version_fn(2), version=2)
        client.set_shadow("m", 2, fraction=0.5)
        entry = next(
            e for e in client.list_models()["models"] if e["name"] == "m"
        )
        assert entry["version"] == 1
        assert entry["state"] == SERVING
        assert entry["versions"] == [
            {"version": 1, "state": SERVING},
            {"version": 2, "state": STANDBY},
        ]
        assert entry["shadow"] == {"version": 2, "fraction": 0.5}
