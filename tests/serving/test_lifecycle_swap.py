"""Hot-swap under fire: version flips while client threads hammer predict.

The PR-9 contract for :meth:`ModelRegistry.promote`: the serving-pointer
flip is atomic *between batches*.  While versions flip under concurrent
load, every reply must be bit-exact against exactly one version's function
over that request's rows (no torn batches mixing versions inside one
reply), no request may error, no request may be shed because of a flip,
and the shared admission budget must drain back to zero — a leaked
reservation would eventually wedge the box.

Lifecycle mutators are loop-confined; blocking test code reaches them
through :meth:`BackgroundServer.run` or over the wire.
"""

import threading

import numpy as np
import pytest

from repro.serving import (
    BackgroundServer,
    InferenceServer,
    ModelNotFoundError,
    ServingClient,
)
from repro.serving.registry import SERVING, STANDBY
from repro.utils.rng import as_rng

N_FEATURES = 24
N_CLASSES = 8


def version_fn(version: int):
    """Version ``v``'s batch function: ``(popcount(row) + v) % C``.

    Distinct versions disagree on every row, so a reply identifies the
    version that produced it — and a torn batch (some rows answered by v1,
    some by v2) cannot match any single version.
    """

    def batch_fn(X):
        return (np.asarray(X, dtype=np.int64).sum(axis=1) + version) % N_CLASSES

    return batch_fn


def matching_versions(X, labels, candidates):
    """The candidate versions whose function produced ``labels`` for ``X``."""
    labels = np.asarray(labels)
    return [
        v for v in candidates if np.array_equal(labels, version_fn(v)(X))
    ]


def register(handle, *args, **kwargs):
    """``register_model`` on the server's loop (live registration)."""

    async def _do():
        return handle.server.register_model(*args, **kwargs)

    return handle.run(_do())


def quiesce(handle):
    """Wait out every scheduled drain/retire/shadow task."""

    async def _do():
        await handle.server.registry.wait_idle()

    handle.run(_do())


@pytest.fixture()
def server():
    srv = InferenceServer(
        max_batch=32,
        max_wait_us=500,
        max_queue=100_000,
        max_total_queue=100_000,
    )
    srv.register_model("m", version_fn(1), version=1)
    with BackgroundServer(srv) as handle:
        yield handle


class TestPromoteSemantics:
    def test_promote_flips_and_retires(self, server):
        rng = as_rng(0)
        X = rng.integers(0, 2, size=(5, N_FEATURES), dtype=np.uint8)
        with ServingClient(*server.address) as client:
            register(server, "m", version_fn(2), version=2)
            np.testing.assert_array_equal(
                client.predict(X, model="m"), version_fn(1)(X)
            )
            # the standby is pinnable before the flip
            np.testing.assert_array_equal(
                client.predict(X, model="m@2"), version_fn(2)(X)
            )
            result = client.promote("m", 2)
            assert result == {
                "ok": True,
                "model": "m",
                "version": 2,
                "previous": 1,
                "changed": True,
            }
            np.testing.assert_array_equal(
                client.predict(X, model="m"), version_fn(2)(X)
            )
            # idempotent re-promotion
            assert client.promote("m", 2)["changed"] is False
            quiesce(server)
            # v1 drained out of the chain: pinning it is model_not_found
            events = {e["event"] for e in client.lifecycle("m")}
            assert {"promoted", "draining", "retired"} <= events
            with pytest.raises(ModelNotFoundError):
                client.predict(X, model="m@1")
            info = next(
                entry
                for entry in client.list_models()["models"]
                if entry["name"] == "m"
            )
            assert info["version"] == 2
            assert info["versions"] == [{"version": 2, "state": SERVING}]

    def test_promote_unknown_version_is_typed(self, server):
        with ServingClient(*server.address) as client:
            with pytest.raises(ModelNotFoundError):
                client.promote("m", 7)
            with pytest.raises(ModelNotFoundError):
                client.promote("ghost", 1)

    def test_register_duplicate_version_rejected(self, server):
        register(server, "m", version_fn(2), version=2)
        with pytest.raises(ValueError, match="already has a version 2"):
            register(server, "m", version_fn(2), version=2)
        with pytest.raises(ValueError, match="already registered"):
            register(server, "m", version_fn(3))

    def test_on_retire_fires_once_per_displaced_version(self, server):
        retired = []
        register(
            server,
            "m",
            version_fn(2),
            version=2,
            on_retire=lambda: retired.append(2),
        )
        with ServingClient(*server.address) as client:
            client.promote("m", 2)
            quiesce(server)
            assert retired == []  # v2 is serving; v1 had no hook
            register(
                server,
                "m",
                version_fn(3),
                version=3,
                on_retire=lambda: retired.append(3),
            )
            client.promote("m", 3)
            quiesce(server)
            assert retired == [2]


class TestSwapUnderLoad:
    N_THREADS = 8
    N_FLIPS = 6
    REQUESTS_PER_THREAD = 60

    def test_concurrent_hot_swap_is_torn_free(self, server):
        """Client threads hammer while the control thread cycles versions
        1→2→...→7; every reply must match exactly one version function."""
        rng = as_rng(1)
        batches = [
            rng.integers(0, 2, size=(n, N_FEATURES), dtype=np.uint8)
            for n in (1, 3, 17, 32, 57)
        ]
        all_versions = range(1, self.N_FLIPS + 2)
        failures = []

        def hammer(worker: int):
            try:
                with ServingClient(*server.address) as client:
                    for i in range(self.REQUESTS_PER_THREAD):
                        X = batches[(worker + i) % len(batches)]
                        labels = client.predict(X, model="m")
                        matched = matching_versions(X, labels, all_versions)
                        if len(matched) != 1:
                            failures.append(
                                (worker, i, labels.tolist(), matched)
                            )
            except Exception as error:  # noqa: BLE001 - surfaced below
                failures.append((worker, "error", repr(error)))

        threads = [
            threading.Thread(target=hammer, args=(w,))
            for w in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        try:
            with ServingClient(*server.address) as control:
                for version in range(2, self.N_FLIPS + 2):
                    register(server, "m", version_fn(version), version=version)
                    control.promote("m", version)
        finally:
            for t in threads:
                t.join()
        assert not failures, failures[:5]
        quiesce(server)
        stats = server.server.registry.resolve("m").stats.snapshot()
        assert stats["shed"] == 0
        assert stats["errors"] == 0
        assert (
            stats["requests_completed"]
            >= self.N_THREADS * self.REQUESTS_PER_THREAD
        )
        # the shared budget drained: nothing leaked across the flips
        assert server.server.registry.budget.outstanding == 0

    def test_256_concurrent_requests_across_a_flip(self, server):
        """The acceptance drill: 256 in-flight requests race one promote.

        Zero errors, zero sheds, and every reply bit-exact against v1 or
        v2 — never a mixture inside one reply.
        """
        rng = as_rng(2)
        X = rng.integers(0, 2, size=(13, N_FEATURES), dtype=np.uint8)
        expected = {1: version_fn(1)(X), 2: version_fn(2)(X)}
        register(server, "m", version_fn(2), version=2)
        n_clients = 256
        barrier = threading.Barrier(n_clients + 1)
        failures = []

        def one_shot(worker: int):
            try:
                with ServingClient(*server.address) as client:
                    client.ping()  # connection is up before the barrier
                    barrier.wait(timeout=30)
                    labels = client.predict(X, model="m")
                    matched = [
                        v
                        for v, exp in expected.items()
                        if np.array_equal(labels, exp)
                    ]
                    if len(matched) != 1:
                        failures.append((worker, labels.tolist()))
            except Exception as error:  # noqa: BLE001 - surfaced below
                failures.append((worker, repr(error)))

        threads = [
            threading.Thread(target=one_shot, args=(w,))
            for w in range(n_clients)
        ]
        for t in threads:
            t.start()
        with ServingClient(*server.address) as control:
            barrier.wait(timeout=30)
            control.promote("m", 2)
        for t in threads:
            t.join()
        assert not failures, failures[:5]
        quiesce(server)
        stats = server.server.registry.resolve("m").stats.snapshot()
        assert stats["shed"] == 0
        assert stats["errors"] == 0
        assert server.server.registry.budget.outstanding == 0


class TestVersionStates:
    def test_family_view_tracks_states(self, server):
        register(server, "m", version_fn(2), version=2)
        info = server.server.registry.describe_family("m")
        assert info["versions"] == [
            {"version": 1, "state": SERVING},
            {"version": 2, "state": STANDBY},
        ]
        assert info["shadow"] is None

    def test_unregister_version_refuses_the_serving_one(self, server):
        register(server, "m", version_fn(2), version=2)
        registry = server.server.registry

        async def _unregister(version):
            return registry.unregister_version("m", version)

        with pytest.raises(ValueError, match="is serving"):
            server.run(_unregister(1))
        server.run(_unregister(2))
        quiesce(server)
        assert registry.describe_family("m")["versions"] == [
            {"version": 1, "state": SERVING}
        ]
