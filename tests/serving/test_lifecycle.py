"""Server lifecycle: starting → serving → draining → stopped.

Drain is the graceful half of shutdown: admissions stop (typed
``unavailable`` on both wire protocols), everything admitted before the
flip still completes, control ops keep answering so the drain can be
observed, and ``/healthz`` flips to 503 so load balancers and the cluster
router route away.  These tests pin each of those promises, plus the
runtime admission-share knob (``set_admission_weights``) the rebalancer
pushes through the same wire.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.engine import pack_bits
from repro.serving import InferenceServer
from repro.serving.binary_protocol import decode_reply, encode_predict_request
from repro.serving.protocol import read_message, write_message
from repro.serving.transport import read_reply_frame
from repro.serving.queue import ServerUnavailableError

N_FEATURES = 8


def _popcount_fn(X):
    return np.asarray(X, dtype=np.int64).sum(axis=1) % 3


def _server(**kwargs):
    kwargs.setdefault("max_batch", 16)
    kwargs.setdefault("max_wait_us", 1_000)
    kwargs.setdefault("max_queue", 256)
    srv = InferenceServer(**kwargs)
    srv.register_model("m", _popcount_fn)
    return srv


async def _request(address, payload):
    """One JSON request/response on a fresh connection."""
    reader, writer = await asyncio.open_connection(*address)
    try:
        await write_message(writer, payload)
        return await read_message(reader)
    finally:
        writer.close()
        await writer.wait_closed()


class TestStates:
    def test_state_walk(self):
        async def drive():
            srv = _server()
            states = [srv.state]
            await srv.start()
            states.append(srv.state)
            await srv.drain()
            states.append(srv.state)
            await srv.stop()
            states.append(srv.state)
            return states

        assert asyncio.run(drive()) == [
            "starting",
            "serving",
            "draining",
            "stopped",
        ]

    def test_drain_is_idempotent(self):
        async def drive():
            srv = _server()
            await srv.start()
            try:
                await srv.drain()
                await srv.drain()  # second call is a no-op, not an error
                return srv.state
            finally:
                await srv.stop()

        assert asyncio.run(drive()) == "draining"

    def test_stop_without_drain_still_lands_stopped(self):
        async def drive():
            srv = _server()
            await srv.start()
            await srv.stop()
            return srv.state

        assert asyncio.run(drive()) == "stopped"


class TestDrainSemantics:
    def test_draining_rejects_json_predict_with_unavailable(self):
        async def drive():
            srv = _server()
            address = await srv.start()
            try:
                await srv.drain()
                return await _request(
                    address, {"op": "predict", "features": [[1] * N_FEATURES]}
                )
            finally:
                await srv.stop()

        response = asyncio.run(drive())
        assert response["ok"] is False
        assert response["error"]["type"] == "unavailable"
        assert "draining" in response["error"]["message"]

    def test_draining_rejects_binary_predict_with_unavailable(self):
        rows = np.ones((2, N_FEATURES), dtype=np.uint8)

        async def drive():
            srv = _server()
            address = await srv.start()
            try:
                await srv.drain()
                reader, writer = await asyncio.open_connection(*address)
                try:
                    writer.write(
                        encode_predict_request(
                            pack_bits(rows), 2, model="m", request_id=5
                        )
                    )
                    await writer.drain()
                    return await read_reply_frame(reader)
                finally:
                    writer.close()
                    await writer.wait_closed()
            finally:
                await srv.stop()

        reply = asyncio.run(drive())
        assert reply.request_id == 5  # id echoed even on rejection
        assert reply.error_type == "unavailable"
        with pytest.raises(ServerUnavailableError, match="draining"):
            decode_reply(reply.frame)

    def test_admitted_work_completes_before_new_work_is_rejected(self):
        """A predict in flight when drain starts still gets its answer."""
        release = threading.Event()

        def slow_fn(X):
            release.wait(timeout=5)
            return _popcount_fn(X)

        rows = [[1, 0, 1, 0, 1, 0, 1, 0]]

        async def drive():
            srv = InferenceServer(max_batch=4, max_wait_us=500, max_queue=64)
            srv.register_model("m", slow_fn)
            address = await srv.start()
            try:
                reader, writer = await asyncio.open_connection(*address)
                try:
                    await write_message(
                        writer, {"op": "predict", "id": 1, "features": rows}
                    )
                    # let the request reach the queue, then start draining
                    await asyncio.sleep(0.05)
                    drain = asyncio.ensure_future(srv.drain())
                    await asyncio.sleep(0.05)
                    assert srv.state == "draining"
                    assert not drain.done()  # blocked on the admitted batch
                    release.set()
                    await drain
                    response = await read_message(reader)
                finally:
                    writer.close()
                    await writer.wait_closed()
                late = await _request(
                    address, {"op": "predict", "features": rows}
                )
                return response, late
            finally:
                await srv.stop()

        response, late = asyncio.run(drive())
        assert response["ok"] and response["labels"] == [1]  # 4 bits % 3
        assert late["error"]["type"] == "unavailable"

    def test_control_ops_keep_answering_while_draining(self):
        async def drive():
            srv = _server()
            address = await srv.start()
            try:
                await srv.drain()
                ping = await _request(address, {"op": "ping"})
                stats = await _request(address, {"op": "stats", "model": "m"})
                return ping, stats
            finally:
                await srv.stop()

        ping, stats = asyncio.run(drive())
        assert ping == {"ok": True, "state": "draining"}
        assert stats["ok"] and stats["backlog_samples"] == 0

    def test_drain_op_over_the_wire(self):
        async def drive():
            srv = _server()
            address = await srv.start()
            try:
                response = await _request(address, {"op": "drain"})
                return response, srv.state
            finally:
                await srv.stop()

        response, state = asyncio.run(drive())
        assert response == {"ok": True, "state": "draining"}
        assert state == "draining"


class TestHealthz:
    @staticmethod
    async def _healthz(http_address):
        reader, writer = await asyncio.open_connection(*http_address)
        try:
            writer.write(
                b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
            )
            await writer.drain()
            raw = await reader.read()
        finally:
            writer.close()
            await writer.wait_closed()
        head, _, body = raw.partition(b"\r\n\r\n")
        return int(head.split()[1]), body

    def test_healthz_follows_the_state(self):
        async def drive():
            srv = _server(http_port=0)
            await srv.start()
            try:
                before = await self._healthz(srv.http_address)
                await srv.drain()
                after = await self._healthz(srv.http_address)
                return before, after
            finally:
                await srv.stop()

        before, after = asyncio.run(drive())
        assert before == (200, b"ok\n")
        assert after == (503, b"draining\n")


class TestSetAdmissionWeights:
    def test_weights_partition_the_shared_budget(self):
        async def drive():
            srv = InferenceServer(
                max_batch=8, max_wait_us=500, max_queue=256,
                max_total_queue=100,
            )
            srv.register_model("a", _popcount_fn)
            srv.register_model("b", _popcount_fn)
            address = await srv.start()
            try:
                response = await _request(
                    address,
                    {
                        "op": "set_admission_weights",
                        "weights": {"a": 3.0, "b": 1.0},
                    },
                )
                return response, srv
            finally:
                await srv.stop()

        response, srv = asyncio.run(drive())
        assert response["ok"] is True
        assert response["weights"] == {"a": 3.0, "b": 1.0}
        assert response["shares"] == {"a": 75, "b": 25}

    def test_without_shared_budget_is_bad_request(self):
        async def drive():
            srv = _server()  # no max_total_queue
            address = await srv.start()
            try:
                return await _request(
                    address,
                    {"op": "set_admission_weights", "weights": {"m": 1.0}},
                )
            finally:
                await srv.stop()

        response = asyncio.run(drive())
        assert response["error"]["type"] == "bad_request"
        assert "max_total_queue" in response["error"]["message"]

    def test_malformed_weights_are_bad_request(self):
        async def drive():
            srv = _server(max_total_queue=64)
            address = await srv.start()
            try:
                not_a_dict = await _request(
                    address,
                    {"op": "set_admission_weights", "weights": [1, 2]},
                )
                negative = await _request(
                    address,
                    {"op": "set_admission_weights", "weights": {"m": -1.0}},
                )
                return not_a_dict, negative
            finally:
                await srv.stop()

        not_a_dict, negative = asyncio.run(drive())
        assert not_a_dict["error"]["type"] == "bad_request"
        assert negative["error"]["type"] == "bad_request"
