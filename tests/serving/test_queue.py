"""Coalescing edge cases for the BatchingQueue.

The satellite checklist cases: empty-batch timeout, a single oversized
request, shed-on-overflow with a typed error, and bit-exactness of the
scattered results against a direct ``predict_batch`` on the concatenation.
"""

import asyncio

import numpy as np
import pytest

from repro.engine import compile_netlist, rinc_bank_netlist
from repro.serving import (
    AdmissionBudget,
    BadRequestError,
    BatchingQueue,
    ServerOverloadedError,
)
from repro.utils.rng import as_rng

N_FEATURES = 32


def _sum_fn(calls):
    """A batch function that records every batch size it evaluates."""

    def batch_fn(X):
        calls.append(X.shape[0])
        return X.sum(axis=1).astype(np.int64)

    return batch_fn


def _random_chunks(rng, n_chunks, max_rows=5):
    return [
        rng.integers(0, 2, size=(int(rng.integers(1, max_rows + 1)), N_FEATURES))
        .astype(np.uint8)
        for _ in range(n_chunks)
    ]


class TestCoalescing:
    def test_concurrent_submits_share_batches(self):
        calls = []

        async def main():
            queue = BatchingQueue(
                _sum_fn(calls), max_batch=64, max_wait_us=10_000, max_queue=1024
            )
            chunks = [
                np.ones((1, N_FEATURES), dtype=np.uint8) for _ in range(256)
            ]
            results = await asyncio.gather(*(queue.submit(c) for c in chunks))
            await queue.close()
            return results

        results = asyncio.run(main())
        # 256 one-sample requests, max_batch=64: four full batches, zero
        # per-request evaluations
        assert calls == [64, 64, 64, 64]
        for r in results:
            np.testing.assert_array_equal(r, [N_FEATURES])

    def test_timeout_flushes_partial_batch(self):
        calls = []

        async def main():
            queue = BatchingQueue(
                _sum_fn(calls), max_batch=64, max_wait_us=5_000, max_queue=1024
            )
            chunks = [
                np.zeros((1, N_FEATURES), dtype=np.uint8) for _ in range(3)
            ]
            results = await asyncio.gather(*(queue.submit(c) for c in chunks))
            await queue.close()
            return results

        results = asyncio.run(main())
        assert calls == [3]  # one coalesced batch, driven by the timer
        assert all(r.shape == (1,) for r in results)

    def test_scatter_is_bit_exact_vs_direct_predict_batch(self):
        """Results through the queue == direct predict_batch, bit for bit."""
        netlist = rinc_bank_netlist(
            n_primary_inputs=N_FEATURES,
            n_trees=24,
            n_mats=8,
            n_outputs=4,
            lut_width=4,
            seed=5,
        )
        engine = compile_netlist(netlist)
        rng = as_rng(11)
        chunks = _random_chunks(rng, n_chunks=20)

        async def main():
            queue = BatchingQueue(
                engine.predict_batch,
                max_batch=16,
                max_wait_us=2_000,
                max_queue=1024,
            )
            results = await asyncio.gather(*(queue.submit(c) for c in chunks))
            await queue.close()
            return results

        results = asyncio.run(main())
        for chunk, result in zip(chunks, results):
            np.testing.assert_array_equal(result, engine.predict_batch(chunk))


class TestEmptyBatchTimeout:
    def test_timer_firing_on_drained_queue_is_noop(self):
        calls = []

        async def main():
            queue = BatchingQueue(
                _sum_fn(calls), max_batch=4, max_wait_us=1_000, max_queue=64
            )
            # size-triggered flush drains the queue...
            chunks = [np.ones((2, N_FEATURES), dtype=np.uint8) for _ in range(2)]
            await asyncio.gather(*(queue.submit(c) for c in chunks))
            # ...then the wait budget elapses and a stray timer callback
            # fires on an empty queue: must be a no-op, not an empty batch
            queue._on_timer(asyncio.get_running_loop())
            await asyncio.sleep(0.01)
            await queue.close()

        asyncio.run(main())
        assert calls == [4]  # no empty evaluation ever reached the engine

    def test_zero_row_request_is_a_typed_bad_request(self):
        async def main():
            queue = BatchingQueue(_sum_fn([]), max_batch=4, max_queue=64)
            try:
                with pytest.raises(BadRequestError):
                    await queue.submit(np.empty((0, N_FEATURES), dtype=np.uint8))
            finally:
                await queue.close()

        asyncio.run(main())

    def test_malformed_request_is_a_typed_bad_request(self):
        async def main():
            queue = BatchingQueue(_sum_fn([]), max_batch=4, max_queue=64)
            try:
                with pytest.raises(BadRequestError):
                    await queue.submit(np.full((2, N_FEATURES), 0.5))
            finally:
                await queue.close()

        asyncio.run(main())


class TestOversizedRequest:
    def test_single_request_larger_than_max_batch(self):
        calls = []
        rng = as_rng(3)
        big = rng.integers(0, 2, size=(5 * 8, N_FEATURES)).astype(np.uint8)

        async def main():
            queue = BatchingQueue(
                _sum_fn(calls), max_batch=8, max_wait_us=50_000, max_queue=1024
            )
            result = await queue.submit(big)
            await queue.close()
            return result

        result = asyncio.run(main())
        # not split, not delayed by the timer: one oversized batch
        assert calls == [40]
        np.testing.assert_array_equal(result, big.sum(axis=1))

    def test_oversized_request_larger_than_max_queue_admitted_when_idle(self):
        calls = []
        big = np.ones((100, N_FEATURES), dtype=np.uint8)

        async def main():
            queue = BatchingQueue(
                _sum_fn(calls), max_batch=8, max_wait_us=1_000, max_queue=8
            )
            result = await queue.submit(big)  # shedding it could never succeed
            await queue.close()
            return result

        result = asyncio.run(main())
        assert calls == [100]
        assert result.shape == (100,)


class TestAdmissionControl:
    def test_shed_on_overflow_raises_typed_error(self):
        calls = []

        async def main():
            queue = BatchingQueue(
                _sum_fn(calls),
                max_batch=100,
                max_wait_us=200_000,
                max_queue=8,
            )
            ok1 = asyncio.ensure_future(
                queue.submit(np.ones((3, N_FEATURES), dtype=np.uint8))
            )
            ok2 = asyncio.ensure_future(
                queue.submit(np.ones((3, N_FEATURES), dtype=np.uint8))
            )
            await asyncio.sleep(0)  # let both enqueue (6 of 8 slots used)
            with pytest.raises(ServerOverloadedError):
                await queue.submit(np.ones((3, N_FEATURES), dtype=np.uint8))
            shed_after = queue.stats.shed
            await queue.flush()  # release the two admitted requests
            await asyncio.gather(ok1, ok2)
            await queue.close()
            return shed_after

        assert asyncio.run(main()) == 1
        assert calls == [6]  # the shed request never reached the engine

    def test_evaluating_batches_count_toward_the_admission_bound(self):
        """In-flight samples keep the bound real: a flush must not reset it.

        With max_batch <= max_queue the pre-flush backlog alone can never
        exceed the bound (every flush would zero it), so admission control
        has to count admitted-but-uncompleted samples or overload would
        pile up unboundedly behind the evaluation thread.
        """
        import threading

        release = threading.Event()

        def slow_fn(X):
            release.wait(timeout=10)
            return X.sum(axis=1).astype(np.int64)

        async def main():
            queue = BatchingQueue(
                slow_fn, max_batch=2, max_wait_us=200_000, max_queue=4
            )
            first = asyncio.ensure_future(
                queue.submit(np.ones((2, N_FEATURES), dtype=np.uint8))
            )
            second = asyncio.ensure_future(
                queue.submit(np.ones((2, N_FEATURES), dtype=np.uint8))
            )
            await asyncio.sleep(0)  # both flushed; 4 samples now evaluating
            assert queue.backlog_samples == 4
            with pytest.raises(ServerOverloadedError):
                await queue.submit(np.ones((1, N_FEATURES), dtype=np.uint8))
            release.set()
            await asyncio.gather(first, second)
            assert queue.backlog_samples == 0  # completions release the bound
            await queue.submit(np.ones((1, N_FEATURES), dtype=np.uint8))
            await queue.close()

        asyncio.run(main())

    def test_submit_after_close_raises(self):
        async def main():
            queue = BatchingQueue(_sum_fn([]), max_batch=4, max_queue=64)
            await queue.close()
            with pytest.raises(RuntimeError, match="closed"):
                await queue.submit(np.ones((1, N_FEATURES), dtype=np.uint8))

        asyncio.run(main())


class TestSharedAdmissionBudget:
    """The multi-model bound: one budget across several queues."""

    def test_budget_sheds_across_queues(self):
        """Two queues share 8 slots: whichever fills second gets shed."""
        calls_a, calls_b = [], []

        async def main():
            budget = AdmissionBudget(8)
            queue_a = BatchingQueue(
                _sum_fn(calls_a), max_batch=100, max_wait_us=200_000,
                max_queue=100, budget=budget,
            )
            queue_b = BatchingQueue(
                _sum_fn(calls_b), max_batch=100, max_wait_us=200_000,
                max_queue=100, budget=budget,
            )
            ok_a = asyncio.ensure_future(
                queue_a.submit(np.ones((6, N_FEATURES), dtype=np.uint8))
            )
            await asyncio.sleep(0)  # 6 of 8 shared slots held by queue A
            # queue B's own max_queue (100) would admit this; the shared
            # budget must shed it
            with pytest.raises(ServerOverloadedError, match="shared"):
                await queue_b.submit(np.ones((3, N_FEATURES), dtype=np.uint8))
            assert queue_b.stats.shed == 1
            await queue_a.flush()
            await ok_a
            assert budget.outstanding == 0  # completion released the budget
            # with the budget idle again, queue B serves normally
            await queue_b.submit(np.ones((3, N_FEATURES), dtype=np.uint8))
            await queue_a.close()
            await queue_b.close()

        asyncio.run(main())
        assert calls_a == [6]
        assert calls_b == [3]

    def test_budget_released_on_evaluation_failure(self):
        def broken(X):
            raise ValueError("boom")

        async def main():
            budget = AdmissionBudget(8)
            queue = BatchingQueue(
                broken, max_batch=4, max_wait_us=1_000, max_queue=64,
                budget=budget,
            )
            with pytest.raises(ValueError):
                await queue.submit(np.ones((2, N_FEATURES), dtype=np.uint8))
            assert budget.outstanding == 0
            await queue.close()

        asyncio.run(main())

    def test_oversized_request_admitted_when_budget_idle(self):
        calls = []

        async def main():
            budget = AdmissionBudget(4)
            queue = BatchingQueue(
                _sum_fn(calls), max_batch=8, max_wait_us=1_000,
                max_queue=100, budget=budget,
            )
            # larger than the whole shared budget, but nothing is in
            # flight anywhere: shedding could never succeed on retry
            result = await queue.submit(
                np.ones((10, N_FEATURES), dtype=np.uint8)
            )
            await queue.close()
            return result

        result = asyncio.run(main())
        assert calls == [10]
        assert result.shape == (10,)

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            AdmissionBudget(0)


class TestMixedWidthRequests:
    def test_width_change_starts_a_fresh_batch(self):
        """Different feature widths never share a coalesced matrix."""
        calls = []

        def batch_fn(X):
            calls.append(X.shape)
            return X.sum(axis=1).astype(np.int64)

        async def main():
            queue = BatchingQueue(
                batch_fn, max_batch=64, max_wait_us=5_000, max_queue=1024
            )
            wide = np.ones((2, N_FEATURES), dtype=np.uint8)
            narrow = np.ones((3, 8), dtype=np.uint8)
            results = await asyncio.gather(
                queue.submit(wide), queue.submit(narrow), queue.submit(wide)
            )
            await queue.close()
            return results

        results = asyncio.run(main())
        # three batches: the width change flushes, it never wedges a batch
        assert sorted(shape[1] for shape in calls) == [8, N_FEATURES, N_FEATURES]
        np.testing.assert_array_equal(results[0], [N_FEATURES, N_FEATURES])
        np.testing.assert_array_equal(results[1], [8, 8, 8])
        np.testing.assert_array_equal(results[2], [N_FEATURES, N_FEATURES])


class TestFailurePropagation:
    def test_wrong_length_result_resolves_callers_and_releases_backlog(self):
        """A batch_fn returning the wrong row count must not hang futures."""

        def short_fn(X):
            return np.zeros(X.shape[0] - 1, dtype=np.int64)  # one row short

        async def main():
            queue = BatchingQueue(
                short_fn, max_batch=4, max_wait_us=1_000, max_queue=64
            )
            chunks = [np.ones((2, N_FEATURES), dtype=np.uint8) for _ in range(2)]
            results = await asyncio.gather(
                *(queue.submit(c) for c in chunks), return_exceptions=True
            )
            backlog = queue.backlog_samples
            await queue.close()
            return results, backlog

        results, backlog = asyncio.run(main())
        assert all(isinstance(r, ValueError) for r in results)
        assert backlog == 0  # the failed batch released its admission share

    def test_batch_fn_error_reaches_every_caller(self):
        def broken(X):
            raise ValueError("model exploded")

        async def main():
            queue = BatchingQueue(
                broken, max_batch=4, max_wait_us=1_000, max_queue=64
            )
            chunks = [np.ones((2, N_FEATURES), dtype=np.uint8) for _ in range(2)]
            results = await asyncio.gather(
                *(queue.submit(c) for c in chunks), return_exceptions=True
            )
            errors = queue.stats.errors
            await queue.close()
            return results, errors

        results, errors = asyncio.run(main())
        assert all(isinstance(r, ValueError) for r in results)
        assert errors == 2


class TestConstruction:
    def test_invalid_parameters(self):
        fn = _sum_fn([])
        with pytest.raises(ValueError):
            BatchingQueue(fn, max_batch=0)
        with pytest.raises(ValueError):
            BatchingQueue(fn, max_wait_us=-1.0)
        with pytest.raises(ValueError):
            BatchingQueue(fn, max_queue=0)


class TestPackedSubmissions:
    """PR 6: the binary protocol's packed-domain path through the queue."""

    def test_packed_requests_coalesce_into_one_packed_fn_call(self):
        from repro.engine import pack_bits

        calls = []

        def packed_fn(words, n_samples):
            calls.append((words.shape, n_samples))
            # per-sample popcount of the coalesced words, as a stand-in
            from repro.engine import unpack_bits

            return unpack_bits(words, n_samples).sum(axis=1).astype(np.int64)

        async def main():
            queue = BatchingQueue(
                lambda X: X.sum(axis=1),
                max_batch=64,
                max_wait_us=10_000,
                max_queue=1024,
                packed_fn=packed_fn,
            )
            assert queue.packed_path
            chunks = [
                np.ones((1, N_FEATURES), dtype=np.uint8) for _ in range(64)
            ]
            results = await asyncio.gather(
                *(queue.submit_packed(pack_bits(c), 1) for c in chunks)
            )
            await queue.close()
            return results

        results = asyncio.run(main())
        # 64 one-sample packed requests coalesce into ONE packed evaluation
        # of one word per signal — the zero-copy win in miniature
        assert calls == [((N_FEATURES, 1), 64)]
        for r in results:
            np.testing.assert_array_equal(r, [N_FEATURES])

    def test_packed_without_packed_fn_falls_back_bit_exact(self):
        """No packed_fn: one unpack_bits then batch_fn — same numbers."""
        from repro.engine import pack_bits

        rng = as_rng(31)
        chunks = _random_chunks(rng, n_chunks=17)

        def batch_fn(X):
            return np.asarray(X, dtype=np.int64).sum(axis=1) * 3 - 1

        async def main():
            queue = BatchingQueue(
                batch_fn, max_batch=16, max_wait_us=2_000, max_queue=1024
            )
            assert not queue.packed_path
            results = await asyncio.gather(
                *(
                    queue.submit_packed(pack_bits(c), c.shape[0])
                    for c in chunks
                )
            )
            await queue.close()
            return results

        results = asyncio.run(main())
        for chunk, result in zip(chunks, results):
            np.testing.assert_array_equal(result, batch_fn(chunk))

    def test_padding_garbage_never_reaches_the_model(self):
        """Poisoned bits past n_samples must not change any answer."""
        from repro.engine import pack_bits, packed_weighted_sums

        rng = as_rng(32)
        weights = rng.integers(-3, 4, size=N_FEATURES).astype(np.int64)

        def packed_fn(words, n_samples):
            return packed_weighted_sums(words, weights, n_samples)

        chunks = _random_chunks(rng, n_chunks=9, max_rows=7)

        def poisoned(chunk):
            packed = pack_bits(chunk).copy()
            k = chunk.shape[0]
            tail = k - (packed.shape[1] - 1) * 64
            if tail < 64:
                packed[:, -1] |= ~np.uint64(0) << np.uint64(tail)
            return packed

        async def main():
            queue = BatchingQueue(
                lambda X: X @ weights,
                max_batch=16,
                max_wait_us=2_000,
                max_queue=1024,
                packed_fn=packed_fn,
            )
            results = await asyncio.gather(
                *(
                    queue.submit_packed(poisoned(c), c.shape[0])
                    for c in chunks
                )
            )
            await queue.close()
            return results

        results = asyncio.run(main())
        for chunk, result in zip(chunks, results):
            np.testing.assert_array_equal(
                result, chunk.astype(np.int64) @ weights
            )

    def test_rows_and_packed_never_share_a_batch(self):
        """A representation change flushes, like a width change does."""
        from repro.engine import pack_bits, unpack_bits

        batch_calls = []
        packed_calls = []

        def batch_fn(X):
            batch_calls.append(X.shape[0])
            return X.sum(axis=1)

        def packed_fn(words, n_samples):
            packed_calls.append(n_samples)
            return unpack_bits(words, n_samples).sum(axis=1)

        async def main():
            queue = BatchingQueue(
                batch_fn,
                max_batch=64,
                max_wait_us=50_000,
                max_queue=1024,
                packed_fn=packed_fn,
            )
            rows = np.ones((2, N_FEATURES), dtype=np.uint8)
            a = asyncio.ensure_future(queue.submit(rows))
            await asyncio.sleep(0)  # rows now pending
            b = asyncio.ensure_future(
                queue.submit_packed(pack_bits(rows), 2)
            )
            await asyncio.sleep(0)  # packed flushed the row batch
            c = asyncio.ensure_future(queue.submit(rows))
            results = await asyncio.gather(a, b, c)
            await queue.close()
            return results

        results = asyncio.run(main())
        assert batch_calls == [2, 2]  # rows before, rows after
        assert packed_calls == [2]  # the packed singleton in between
        for r in results:
            np.testing.assert_array_equal(r, [N_FEATURES, N_FEATURES])

    def test_packed_validation_is_typed(self):
        from repro.engine import pack_bits

        async def main():
            queue = BatchingQueue(
                lambda X: X.sum(axis=1),
                max_batch=8,
                max_wait_us=500,
                max_queue=64,
            )
            good = pack_bits(np.ones((3, N_FEATURES), dtype=np.uint8))
            with pytest.raises(BadRequestError, match="2-D"):
                await queue.submit_packed(good[0], 3)
            with pytest.raises(BadRequestError, match="uint64"):
                await queue.submit_packed(
                    good.astype(np.float64), 3
                )
            with pytest.raises(BadRequestError, match="at least one"):
                await queue.submit_packed(good, 0)
            with pytest.raises(BadRequestError, match="words per"):
                await queue.submit_packed(good, 65)  # 65 samples need 2 words
            await queue.close()

        asyncio.run(main())

    def test_packed_requests_count_against_admission(self):
        from repro.engine import pack_bits

        async def main():
            queue = BatchingQueue(
                lambda X: X.sum(axis=1),
                max_batch=64,
                max_wait_us=50_000,
                max_queue=4,
            )
            rows = np.ones((3, N_FEATURES), dtype=np.uint8)
            first = asyncio.ensure_future(
                queue.submit_packed(pack_bits(rows), 3)
            )
            await asyncio.sleep(0)
            with pytest.raises(ServerOverloadedError):
                await queue.submit_packed(pack_bits(rows), 3)
            result = await first
            await queue.close()
            return result

        result = asyncio.run(main())
        np.testing.assert_array_equal(result, [N_FEATURES] * 3)


class TestWeightedBudget:
    """Weighted-fair partitioning of the shared budget (rebalancer's knob)."""

    def test_shares_follow_the_weights(self):
        budget = AdmissionBudget(100, weights={"a": 3.0, "b": 1.0})
        assert budget.share_of("a") == 75
        assert budget.share_of("b") == 25
        # key-less reservations and unweighted keys see the whole budget
        assert budget.share_of(None) == 100
        assert budget.share_of("c") == 100
        assert budget.weights == {"a": 3.0, "b": 1.0}

    def test_share_never_rounds_to_zero(self):
        budget = AdmissionBudget(10, weights={"a": 1.0, "b": 1_000_000.0})
        assert budget.share_of("a") == 1

    def test_keyed_reservation_bounded_by_share(self):
        budget = AdmissionBudget(100, weights={"a": 1.0, "b": 1.0})
        assert budget.try_reserve(40, "a")
        # 10 more would put "a" at 50... exactly its share: fine
        assert budget.try_reserve(10, "a")
        # one past the share sheds, even though the box holds 50/100
        assert not budget.try_reserve(1, "a")
        assert budget.outstanding_for("a") == 50
        # "b" and unkeyed traffic are unaffected by "a" being at its share
        assert budget.try_reserve(50, "b")
        assert not budget.try_reserve(1, None)  # total bound still applies
        assert budget.outstanding == 100

    def test_per_key_idle_oversized_exception(self):
        budget = AdmissionBudget(100, weights={"a": 1.0, "b": 1.0})
        # a request bigger than "a"'s 50-sample share is admitted while
        # "a" holds nothing (shedding could never succeed on retry)...
        assert budget.try_reserve(80, "a")
        # ...but once it holds anything, the share is enforced again
        assert not budget.try_reserve(1, "a")
        budget.release(80, "a")
        assert budget.outstanding == 0
        assert budget.outstanding_for("a") == 0

    def test_release_unwinds_keyed_accounting(self):
        budget = AdmissionBudget(100, weights={"a": 1.0, "b": 1.0})
        assert budget.try_reserve(30, "a")
        budget.release(30, "a")
        assert budget.try_reserve(50, "a")  # full share available again
        assert budget.outstanding == 50

    def test_set_weights_live_reweighting(self):
        budget = AdmissionBudget(100, weights={"a": 1.0, "b": 1.0})
        assert budget.try_reserve(50, "a")
        assert not budget.try_reserve(1, "a")
        # the rebalancer shifts capacity toward "a" at runtime
        budget.set_weights({"a": 3.0, "b": 1.0})
        assert budget.try_reserve(25, "a")  # new share is 75
        # and away again: over-share holdings are not clawed back, the key
        # simply sheds until it drains below the new share
        budget.set_weights({"a": 1.0, "b": 3.0})
        assert not budget.try_reserve(1, "a")
        budget.release(55, "a")
        assert budget.try_reserve(5, "a")  # 20 + 5 <= 25

    def test_empty_weights_remove_all_shares(self):
        budget = AdmissionBudget(100, weights={"a": 1.0})
        budget.set_weights({})
        assert budget.share_of("a") == 100
        assert budget.weights == {}

    def test_weight_validation(self):
        budget = AdmissionBudget(100)
        with pytest.raises(ValueError, match="non-negative"):
            budget.set_weights({"a": -1.0})
        with pytest.raises(ValueError, match="non-negative"):
            budget.set_weights({"a": float("nan")})
        with pytest.raises(ValueError, match="strings"):
            budget.set_weights({3: 1.0})

    def test_queue_sheds_at_its_share_while_box_is_idle(self):
        """The hard direction: reserved headroom stays reserved."""
        calls = []

        async def main():
            budget = AdmissionBudget(
                8, weights={"latency": 1.0, "batch": 1.0}
            )
            queue = BatchingQueue(
                _sum_fn(calls), max_batch=100, max_wait_us=200_000,
                max_queue=100, budget=budget, budget_key="batch",
            )
            holding = asyncio.ensure_future(
                queue.submit(np.ones((4, N_FEATURES), dtype=np.uint8))
            )
            await asyncio.sleep(0)  # "batch" holds its whole 4-sample share
            # nothing else is in flight anywhere, yet the share sheds:
            # that idle headroom is what "latency" paid for
            with pytest.raises(ServerOverloadedError, match="admission share"):
                await queue.submit(np.ones((1, N_FEATURES), dtype=np.uint8))
            await queue.flush()
            await holding
            assert budget.outstanding == 0
            await queue.close()

        asyncio.run(main())
        assert calls == [4]


class TestBudgetLeakOnCancel:
    def test_cancelled_queued_request_releases_its_reservation(self):
        """Regression: a request cancelled while queued (its connection
        dropped) must give back its budget reservation and leave the
        pending batch — previously the reservation leaked until restart."""
        calls = []

        async def main():
            budget = AdmissionBudget(64, weights={"m": 1.0, "other": 1.0})
            queue = BatchingQueue(
                _sum_fn(calls), max_batch=100, max_wait_us=50_000,
                max_queue=100, budget=budget, budget_key="m",
            )
            task = asyncio.ensure_future(
                queue.submit(np.ones((4, N_FEATURES), dtype=np.uint8))
            )
            await asyncio.sleep(0)  # reaches the queue, holds 4 samples
            assert budget.outstanding == 4
            assert budget.outstanding_for("m") == 4
            assert queue.backlog_samples == 4
            task.cancel()
            await asyncio.sleep(0)
            await asyncio.sleep(0)  # done-callback runs via call_soon
            assert budget.outstanding == 0
            assert budget.outstanding_for("m") == 0
            assert queue.backlog_samples == 0
            # the discarded entry must not reach the batch function either
            await queue.flush()
            await queue.close()

        asyncio.run(main())
        assert calls == []

    def test_cancel_after_flush_does_not_double_release(self):
        """A request cancelled *after* its batch flushed is the batch's to
        release — the done-callback must not release a second time."""
        import threading

        release = threading.Event()

        def slow_fn(X):
            release.wait(timeout=5)
            return X.sum(axis=1).astype(np.int64)

        async def main():
            budget = AdmissionBudget(64)
            queue = BatchingQueue(
                slow_fn, max_batch=4, max_wait_us=100, max_queue=100,
                budget=budget,
            )
            task = asyncio.ensure_future(
                queue.submit(np.ones((4, N_FEATURES), dtype=np.uint8))
            )
            await asyncio.sleep(0.05)  # batch flushed, evaluating in executor
            assert queue.queued_samples == 0  # no longer pending, in flight
            task.cancel()
            release.set()
            with pytest.raises(asyncio.CancelledError):
                await task
            await queue.flush()
            await queue.close()
            # exactly one release: 64 - 4 + 4, not 64 + 4
            assert budget.outstanding == 0
            assert budget.try_reserve(64)

        asyncio.run(main())
