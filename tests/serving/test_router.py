"""Cluster router: balancing, failover, health lifecycle, rebalancing.

Everything here runs router and backends in one event loop (the
process-boundary version lives in ``benchmarks/test_router_throughput.py``);
backends are real :class:`~repro.serving.server.InferenceServer` instances
except in the failure-path tests, where a scripted asyncio server plays a
backend that dies mid-request or sheds on cue.  The three
:class:`~repro.serving.retry.RetryPolicy` failover paths each get their own
test: connect-refused → next endpoint, shed → bounded backoff, drain →
immediate re-route with no backoff at all.
"""

import asyncio
import socket

import numpy as np
import pytest

from repro.engine import pack_bits
from repro.serving import InferenceServer, RetryPolicy, RouterServer
from repro.serving.protocol import (
    encode_message,
    read_message,
    write_message,
)
from repro.serving.router import _BackendLink
from repro.serving.transport import (
    decode_reply,
    encode_predict_request,
    read_reply_frame,
)

N_FEATURES = 8


def _popcount_fn(X):
    return np.asarray(X, dtype=np.int64).sum(axis=1) % 3


def _expected(rows):
    return _popcount_fn(np.asarray(rows))


def _counting_fn(calls):
    def batch_fn(X):
        calls.append(X.shape[0])
        return _popcount_fn(X)

    return batch_fn


async def _backend(calls=None, **kwargs):
    kwargs.setdefault("max_batch", 16)
    kwargs.setdefault("max_wait_us", 1_000)
    kwargs.setdefault("max_queue", 4096)
    srv = InferenceServer(**kwargs)
    fn = _counting_fn(calls) if calls is not None else _popcount_fn
    srv.register_model("m", fn)
    await srv.start()
    return srv


def _router(backends, **kwargs):
    kwargs.setdefault("health_interval", 0)  # deterministic: no health loop
    kwargs.setdefault("retry", None)
    placement = {"m": [(b.host, b.port) for b in backends]}
    return RouterServer(placement, **kwargs)


async def _request(address, payload):
    reader, writer = await asyncio.open_connection(*address)
    try:
        await write_message(writer, payload)
        return await read_message(reader)
    finally:
        writer.close()
        await writer.wait_closed()


def _dead_endpoint():
    """A (host, port) that refuses connections."""
    probe = socket.create_server(("127.0.0.1", 0))
    endpoint = probe.getsockname()
    probe.close()
    return endpoint


class _ScriptedBackend:
    """An asyncio fake backend whose per-connection behaviour we script."""

    def __init__(self, conn_script):
        self._script = conn_script
        self._server = None
        self.host = self.port = None

    async def start(self):
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self

    async def _handle(self, reader, writer):
        try:
            await self._script(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def stop(self):
        self._server.close()
        await self._server.wait_closed()


class TestRouting:
    def test_json_predict_is_bit_exact_and_keeps_the_client_id(self):
        rows = [[1, 0, 1, 0, 1, 1, 0, 0], [0] * N_FEATURES]

        async def drive():
            backend = await _backend()
            router = _router([backend])
            address = await router.start()
            try:
                tagged = await _request(
                    address,
                    {"op": "predict", "id": 77, "features": rows},
                )
                untagged = await _request(
                    address, {"op": "predict", "features": rows}
                )
                return tagged, untagged
            finally:
                await router.stop()
                await backend.stop()

        tagged, untagged = asyncio.run(drive())
        assert tagged["ok"], tagged
        assert tagged["id"] == 77  # the client's id, not the router's
        np.testing.assert_array_equal(tagged["labels"], _expected(rows))
        assert untagged["ok"] and "id" not in untagged

    def test_binary_predict_forwards_raw_frame_with_client_id(self):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 2, size=(5, N_FEATURES)).astype(np.uint8)

        async def drive():
            backend = await _backend()
            router = _router([backend])
            address = await router.start()
            try:
                reader, writer = await asyncio.open_connection(*address)
                try:
                    writer.write(
                        encode_predict_request(
                            pack_bits(rows),
                            rows.shape[0],
                            model="m",
                            request_id=0xDEADBEEF,
                        )
                    )
                    await writer.drain()
                    return await read_reply_frame(reader)
                finally:
                    writer.close()
                    await writer.wait_closed()
            finally:
                await router.stop()
                await backend.stop()

        reply = asyncio.run(drive())
        decoded = decode_reply(reply.frame)
        assert decoded.request_id == 0xDEADBEEF
        np.testing.assert_array_equal(decoded.labels, _expected(rows))

    def test_unknown_model_is_model_not_found(self):
        async def drive():
            backend = await _backend()
            router = _router([backend])
            address = await router.start()
            try:
                return await _request(
                    address,
                    {
                        "op": "predict",
                        "model": "nope",
                        "features": [[1] * N_FEATURES],
                    },
                )
            finally:
                await router.stop()
                await backend.stop()

        response = asyncio.run(drive())
        assert response["error"]["type"] == "model_not_found"

    def test_version_pin_routes_by_family_and_is_forwarded(self):
        """``m@2`` has no placement entry of its own: the router routes it
        by the family ``m`` and forwards the pin untouched, so the backend
        answers with the pinned standby version."""

        def v2_fn(X):
            return (np.asarray(X, dtype=np.int64).sum(axis=1) + 1) % 3

        async def drive():
            backend = await _backend()
            backend.register_model("m", v2_fn, version=2)
            router = _router([backend])
            address = await router.start()
            rows = [[1, 0, 1, 0, 1, 0, 1, 0], [1] * N_FEATURES]
            try:
                pinned = await _request(
                    address,
                    {"op": "predict", "model": "m@2", "features": rows},
                )
                primary = await _request(
                    address,
                    {"op": "predict", "model": "m", "features": rows},
                )
                ghost = await _request(
                    address,
                    {"op": "predict", "model": "ghost@2", "features": rows},
                )
                return pinned, primary, ghost, rows
            finally:
                await router.stop()
                await backend.stop()

        pinned, primary, ghost, rows = asyncio.run(drive())
        assert pinned["ok"], pinned
        X = np.asarray(rows)
        assert pinned["labels"] == v2_fn(X).tolist()
        assert primary["labels"] == _expected(rows).tolist()
        # the family fallback only applies to names the router places
        assert ghost["error"]["type"] == "model_not_found"

    def test_load_spreads_across_replicas(self):
        """Concurrent requests land on both replicas, not just the first."""
        calls_a, calls_b = [], []

        async def drive():
            a = await _backend(calls_a, max_wait_us=20_000, max_batch=4)
            b = await _backend(calls_b, max_wait_us=20_000, max_batch=4)
            router = _router([a, b])
            address = await router.start()
            try:
                reader, writer = await asyncio.open_connection(*address)
                try:
                    for i in range(16):
                        await write_message(
                            writer,
                            {
                                "op": "predict",
                                "id": i,
                                "features": [[1] * N_FEATURES],
                            },
                        )
                    for _ in range(16):
                        response = await read_message(reader)
                        assert response["ok"], response
                finally:
                    writer.close()
                    await writer.wait_closed()
            finally:
                await router.stop()
                await a.stop()
                await b.stop()

        asyncio.run(drive())
        # least-outstanding balancing: with 16 pipelined requests and
        # max_batch=4 both replicas must take real work
        assert sum(calls_a) > 0 and sum(calls_b) > 0
        assert sum(calls_a) + sum(calls_b) == 16

    def test_router_ops(self):
        async def drive():
            backend = await _backend()
            router = _router([backend])
            address = await router.start()
            try:
                ping = await _request(address, {"op": "ping"})
                stats = await _request(address, {"op": "stats"})
                models = await _request(address, {"op": "list_models"})
                return ping, stats, models, backend
            finally:
                await router.stop()
                await backend.stop()

        ping, stats, models, backend = asyncio.run(drive())
        assert ping == {"ok": True, "state": "serving", "role": "router"}
        assert stats["router"]["models"] == {
            "m": [f"{backend.host}:{backend.port}"]
        }
        assert models["models"][0]["name"] == "m"


class TestFailover:
    """The three RetryPolicy failover paths, one test each."""

    def test_connect_refused_fails_over_to_next_endpoint(self):
        rows = [[1] * N_FEATURES]

        async def drive():
            backend = await _backend()
            dead = _dead_endpoint()
            router = RouterServer(
                {"m": [dead, (backend.host, backend.port)]},
                health_interval=0,
                retry=None,
                connect_timeout=0.5,
            )
            address = await router.start()
            try:
                response = await _request(
                    address, {"op": "predict", "features": rows}
                )
                return response, router.snapshot()
            finally:
                await router.stop()
                await backend.stop()

        response, snapshot = asyncio.run(drive())
        assert response["ok"], response
        np.testing.assert_array_equal(response["labels"], _expected(rows))
        dead_entry, live_entry = snapshot["backends"]
        assert dead_entry["state"] == "ejected"
        assert dead_entry["ejections"] == 1
        assert live_entry["state"] == "healthy"
        assert snapshot["failovers"] == 1

    def test_backend_dying_mid_request_fails_over(self):
        """A backend that reads the request then drops the connection."""
        rows = [[0, 1, 0, 1, 0, 1, 0, 1]]

        async def killer(reader, writer):
            await read_message(reader)  # swallow the predict, say nothing
            writer.close()

        async def drive():
            flaky = await _ScriptedBackend(killer).start()
            backend = await _backend()
            router = RouterServer(
                {
                    "m": [
                        (flaky.host, flaky.port),
                        (backend.host, backend.port),
                    ]
                },
                health_interval=0,
                retry=None,
            )
            address = await router.start()
            try:
                response = await _request(
                    address, {"op": "predict", "features": rows}
                )
                return response, router.snapshot()
            finally:
                await router.stop()
                await flaky.stop()
                await backend.stop()

        response, snapshot = asyncio.run(drive())
        assert response["ok"], response  # the client never saw the failure
        np.testing.assert_array_equal(response["labels"], _expected(rows))
        assert snapshot["failovers"] == 1
        assert snapshot["backends"][0]["state"] == "ejected"

    def test_drain_503_reroutes_immediately_without_backoff(self):
        """A draining backend's typed unavailable is a re-route signal, not
        a retry-with-backoff — retry=None proves no backoff is consumed."""
        rows = [[1, 1, 1, 1, 0, 0, 0, 0]]

        async def drive():
            draining = await _backend()
            await draining.drain()
            backend = await _backend()
            router = RouterServer(
                {
                    "m": [
                        (draining.host, draining.port),
                        (backend.host, backend.port),
                    ]
                },
                health_interval=0,
                retry=None,
            )
            address = await router.start()
            try:
                response = await _request(
                    address, {"op": "predict", "features": rows}
                )
                return response, router.snapshot()
            finally:
                await router.stop()
                await draining.stop()
                await backend.stop()

        response, snapshot = asyncio.run(drive())
        assert response["ok"], response
        np.testing.assert_array_equal(response["labels"], _expected(rows))
        # the draining replica is parked for the health loop, not ejected
        assert snapshot["backends"][0]["state"] == "draining"
        assert snapshot["backends"][0]["ejections"] == 0
        assert snapshot["failovers"] == 1

    def test_shed_backs_off_and_retries_under_the_policy(self):
        """Every replica shedding means the cluster is saturated: back off,
        then re-pass.  The scripted backend sheds once, then serves."""
        rows = [[1, 0, 0, 0, 0, 0, 0, 1]]
        sheds = []

        async def shed_then_serve(reader, writer):
            while True:
                request = await read_message(reader)
                if request is None:
                    return
                if not sheds:
                    sheds.append(1)
                    await write_message(
                        writer,
                        {
                            "ok": False,
                            "id": request.get("id"),
                            "error": {
                                "type": "overloaded",
                                "message": "scripted shed",
                            },
                        },
                    )
                    continue
                await write_message(
                    writer,
                    {
                        "ok": True,
                        "id": request.get("id"),
                        "labels": _expected(request["features"]).tolist(),
                    },
                )

        async def drive():
            flaky = await _ScriptedBackend(shed_then_serve).start()
            router = RouterServer(
                {"m": [(flaky.host, flaky.port)]},
                health_interval=0,
                retry=RetryPolicy(
                    max_attempts=2, base_delay=0.001, jitter=0.0
                ),
            )
            address = await router.start()
            try:
                return await _request(
                    address, {"op": "predict", "features": rows}
                )
            finally:
                await router.stop()
                await flaky.stop()

        response = asyncio.run(drive())
        assert response["ok"], response
        np.testing.assert_array_equal(response["labels"], _expected(rows))
        assert sheds == [1]  # the first pass really was shed

    def test_shed_without_retry_policy_reaches_the_client(self):
        async def always_shed(reader, writer):
            while True:
                request = await read_message(reader)
                if request is None:
                    return
                await write_message(
                    writer,
                    {
                        "ok": False,
                        "id": request.get("id"),
                        "error": {
                            "type": "overloaded",
                            "message": "scripted shed",
                        },
                    },
                )

        async def drive():
            flaky = await _ScriptedBackend(always_shed).start()
            router = RouterServer(
                {"m": [(flaky.host, flaky.port)]},
                health_interval=0,
                retry=None,
            )
            address = await router.start()
            try:
                return await _request(
                    address,
                    {"op": "predict", "features": [[1] * N_FEATURES]},
                )
            finally:
                await router.stop()
                await flaky.stop()

        response = asyncio.run(drive())
        assert response["error"]["type"] == "overloaded"

    def test_no_routable_replica_is_typed_unavailable(self):
        async def drive():
            dead = _dead_endpoint()
            router = RouterServer(
                {"m": [dead]},
                health_interval=0,
                retry=None,
                connect_timeout=0.5,
            )
            address = await router.start()
            try:
                return await _request(
                    address,
                    {"op": "predict", "features": [[1] * N_FEATURES]},
                )
            finally:
                await router.stop()

        response = asyncio.run(drive())
        assert response["error"]["type"] == "unavailable"
        assert "no routable replica" in response["error"]["message"]


class TestHealthChecks:
    def test_dead_backend_is_ejected_by_the_probe(self):
        async def drive():
            backend = await _backend()
            router = _router([backend])
            await router.start()
            try:
                await backend.stop()  # the box goes away
                await router.check_health_once()
                return router.snapshot()
            finally:
                await router.stop()

        snapshot = asyncio.run(drive())
        assert snapshot["backends"][0]["state"] == "ejected"

    def test_draining_backend_is_parked_not_ejected(self):
        async def drive():
            backend = await _backend()
            router = _router([backend])
            await router.start()
            try:
                await backend.drain()
                await router.check_health_once()
                return router.snapshot()
            finally:
                await router.stop()
                await backend.stop()

        snapshot = asyncio.run(drive())
        assert snapshot["backends"][0]["state"] == "draining"
        assert snapshot["backends"][0]["ejections"] == 0

    def test_reinstatement_needs_consecutive_probe_successes(self):
        async def drive():
            backend = await _backend()
            router = _router([backend], reinstate_after=2)
            await router.start()
            try:
                (link,) = router.links()
                link.eject("test-forced ejection")
                states = [link.state]
                await router.check_health_once()  # success 1 of 2
                states.append(link.state)
                await router.check_health_once()  # success 2 of 2
                states.append(link.state)
                return states
            finally:
                await router.stop()
                await backend.stop()

        assert asyncio.run(drive()) == [
            _BackendLink.EJECTED,
            _BackendLink.EJECTED,
            _BackendLink.HEALTHY,
        ]


class TestRebalancer:
    def test_traffic_skew_shifts_admission_weights(self):
        """Traffic on alpha only → alpha's weight grows, and the pushed
        weights land in each backend's live AdmissionBudget."""

        async def drive():
            srv = InferenceServer(
                max_batch=16,
                max_wait_us=1_000,
                max_queue=4096,
                max_total_queue=1024,
            )
            srv.register_model("alpha", _popcount_fn)
            srv.register_model("beta", _popcount_fn)
            await srv.start()
            router = RouterServer(
                {
                    "alpha": [(srv.host, srv.port)],
                    "beta": [(srv.host, srv.port)],
                },
                health_interval=0,
                retry=None,
            )
            address = await router.start()
            try:
                for _ in range(10):
                    response = await _request(
                        address,
                        {
                            "op": "predict",
                            "model": "alpha",
                            "features": [[1] * N_FEATURES] * 8,
                        },
                    )
                    assert response["ok"], response
                weights = await router.rebalance_once()
                return weights, srv._registry.budget.weights
            finally:
                await router.stop()
                await srv.stop()

        weights, budget_weights = asyncio.run(drive())
        assert set(weights) == {"alpha", "beta"}
        assert weights["alpha"] > weights["beta"]
        assert weights["alpha"] + weights["beta"] == pytest.approx(1.0)
        # the push really re-partitioned the backend's shared budget
        assert budget_weights == pytest.approx(weights)

    def test_no_traffic_splits_evenly(self):
        async def drive():
            srv = InferenceServer(
                max_batch=8,
                max_wait_us=500,
                max_queue=256,
                max_total_queue=256,
            )
            srv.register_model("alpha", _popcount_fn)
            srv.register_model("beta", _popcount_fn)
            await srv.start()
            router = RouterServer(
                {
                    "alpha": [(srv.host, srv.port)],
                    "beta": [(srv.host, srv.port)],
                },
                health_interval=0,
            )
            await router.start()
            try:
                return await router.rebalance_once()
            finally:
                await router.stop()
                await srv.stop()

        weights = asyncio.run(drive())
        assert weights["alpha"] == pytest.approx(weights["beta"])
