"""The unified transport layer: one codec implementation, shared by all.

The refactor's acceptance criterion is that every frame is parsed by
exactly one implementation — these tests pin (a) the shim modules to the
transport functions *by identity*, so a duplicate codec path cannot sneak
back in unnoticed, (b) the shared error-type mapping both protocols and
both directions use, and (c) the router-facing pieces: the client-side
unified reply reader and the raw-frame request-id splice.
"""

import asyncio

import numpy as np
import pytest

from repro.engine import pack_bits
from repro.serving import binary_protocol, protocol, transport
from repro.serving.queue import (
    BadRequestError,
    ServerOverloadedError,
    ServerUnavailableError,
    ServingError,
)
from repro.serving.registry import ModelNotFoundError
from repro.serving.transport import (
    ERROR_CODES,
    RawBinaryReply,
    WIRE_ERROR_TYPES,
    decode_reply,
    encode_error,
    encode_message,
    encode_reply,
    read_reply_frame,
    replace_request_id,
    wire_exception,
)


def _drive(*byte_chunks):
    """Run ``read_reply_frame`` over an in-memory StreamReader."""

    async def main():
        reader = asyncio.StreamReader()
        for chunk in byte_chunks:
            reader.feed_data(chunk)
        reader.feed_eof()
        return await read_reply_frame(reader)

    return asyncio.run(main())


class TestSingleImplementation:
    """The shims re-export transport's objects — identical, not parallel."""

    def test_json_shim_is_identity(self):
        assert protocol.encode_message is transport.encode_message
        assert protocol.read_message is transport.read_message
        assert protocol.write_message is transport.write_message
        assert protocol.recv_message is transport.recv_message
        assert protocol.send_message is transport.send_message
        assert protocol.ProtocolError is transport.ProtocolError
        assert protocol.MAX_MESSAGE_BYTES == transport.MAX_MESSAGE_BYTES

    def test_binary_shim_is_identity(self):
        assert binary_protocol.read_frame is transport.read_frame
        assert binary_protocol.recv_reply is transport.recv_reply
        assert (
            binary_protocol.encode_predict_request
            is transport.encode_predict_request
        )
        assert binary_protocol.encode_reply is transport.encode_reply
        assert binary_protocol.encode_error is transport.encode_error
        assert (
            binary_protocol.BinaryProtocolError
            is transport.BinaryProtocolError
        )
        assert binary_protocol.ERROR_CODES is transport.ERROR_CODES

    def test_client_error_table_is_the_shared_one(self):
        from repro.serving import client

        assert client._ERROR_TYPES is WIRE_ERROR_TYPES


class TestErrorMapping:
    def test_every_wire_type_maps_to_its_exception(self):
        assert WIRE_ERROR_TYPES["overloaded"] is ServerOverloadedError
        assert WIRE_ERROR_TYPES["bad_request"] is BadRequestError
        assert WIRE_ERROR_TYPES["model_not_found"] is ModelNotFoundError
        assert WIRE_ERROR_TYPES["unavailable"] is ServerUnavailableError

    def test_binary_codes_and_json_strings_are_one_table(self):
        # every binary error code's string has a typed exception (or the
        # ServingError fallback for "internal"), and the code mapping is
        # bijective — two codes for one string would desync the protocols
        assert sorted(ERROR_CODES) == [1, 2, 3, 4, 5]
        assert len(set(ERROR_CODES.values())) == len(ERROR_CODES)
        for name in ERROR_CODES.values():
            exc = wire_exception(name, "boom")
            assert isinstance(exc, ServingError)
            assert exc.error_type == name if name != "internal" else True

    def test_unknown_and_missing_types_fall_back_to_serving_error(self):
        assert type(wire_exception("no-such-type", "x")) is ServingError
        assert type(wire_exception(None, "x")) is ServingError

    def test_unavailable_crosses_the_binary_wire(self):
        frame = encode_error("unavailable", "draining", request_id=3)
        with pytest.raises(ServerUnavailableError, match="draining"):
            decode_reply(frame)


class TestReadReplyFrame:
    """The router's client-side reader: both protocols, replies kept raw."""

    def test_json_reply_comes_back_as_dict(self):
        payload = {"ok": True, "labels": [1, 2], "id": 9}
        assert _drive(encode_message(payload)) == payload

    def test_clean_eof_is_none(self):
        assert _drive() is None

    def test_binary_reply_keeps_raw_frame_bytes(self):
        labels = np.array([3, 1, 2], dtype=np.int64)
        frame = encode_reply(labels, request_id=17)
        reply = _drive(frame)
        assert isinstance(reply, RawBinaryReply)
        assert reply.request_id == 17
        assert reply.error_type is None
        assert reply.frame == frame  # byte-identical: nothing re-encoded
        np.testing.assert_array_equal(decode_reply(reply.frame).labels, labels)

    def test_binary_reply_with_scores_keeps_raw_frame(self):
        labels = np.array([0, 1], dtype=np.int64)
        scores = np.array([[0.5, -0.5], [float("inf"), 2.0]])
        frame = encode_reply(labels, scores, request_id=5)
        reply = _drive(frame)
        assert reply.frame == frame
        decoded = decode_reply(reply.frame)
        np.testing.assert_array_equal(decoded.scores, scores)

    def test_binary_error_carries_type_without_decoding(self):
        frame = encode_error("overloaded", "shed", request_id=8)
        reply = _drive(frame)
        assert isinstance(reply, RawBinaryReply)
        assert reply.error_type == "overloaded"
        assert reply.request_id == 8
        assert reply.frame == frame

    def test_truncated_binary_reply_raises(self):
        frame = encode_reply(np.array([1, 2, 3], dtype=np.int64))
        with pytest.raises(transport.BinaryProtocolError, match="mid-binary"):
            _drive(frame[:-4])

    def test_interleaved_json_and_binary_replies(self):
        async def main():
            reader = asyncio.StreamReader()
            binary = encode_reply(np.array([7], dtype=np.int64), request_id=2)
            reader.feed_data(encode_message({"ok": True, "id": 1}))
            reader.feed_data(binary)
            reader.feed_eof()
            first = await read_reply_frame(reader)
            second = await read_reply_frame(reader)
            return first, second, binary

        first, second, binary = asyncio.run(main())
        assert first == {"ok": True, "id": 1}
        assert second.frame == binary


class TestReplaceRequestId:
    def test_splice_changes_only_the_id(self):
        labels = np.array([5, 0, 9], dtype=np.int64)
        scores = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        original = encode_reply(labels, scores, request_id=111)
        spliced = replace_request_id(original, 42)
        assert spliced == encode_reply(labels, scores, request_id=42)
        decoded = decode_reply(spliced)
        assert decoded.request_id == 42
        np.testing.assert_array_equal(decoded.labels, labels)
        np.testing.assert_array_equal(decoded.scores, scores)

    def test_splice_works_on_error_frames(self):
        original = encode_error("internal", "boom", request_id=1)
        assert replace_request_id(original, 7) == encode_error(
            "internal", "boom", request_id=7
        )

    def test_splice_round_trips_on_predict_frames(self):
        rows = np.array([[1, 0, 1, 1], [0, 1, 0, 0]], dtype=np.uint8)
        packed = pack_bits(rows)
        original = transport.encode_predict_request(
            packed, 2, model="m", request_id=10
        )
        assert replace_request_id(original, 3) == (
            transport.encode_predict_request(
                packed, 2, model="m", request_id=3
            )
        )
