"""Tests for the ServerStats collector."""

import json

import numpy as np
import pytest

from repro.serving import ServerStats


class TestPercentiles:
    def test_known_distribution(self):
        stats = ServerStats()
        values = np.arange(1.0, 101.0)
        for v in values:
            stats.observe_latency(v)
        result = stats.percentiles()
        assert result["p50"] == pytest.approx(np.percentile(values, 50))
        assert result["p95"] == pytest.approx(np.percentile(values, 95))
        assert result["p99"] == pytest.approx(np.percentile(values, 99))

    def test_empty_reservoir_is_zero_not_nan(self):
        result = ServerStats().percentiles()
        assert result == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_reservoir_keeps_recent_samples_only(self):
        stats = ServerStats(max_samples=10)
        for v in range(100):
            stats.observe_latency(float(v))
        # only 90..99 remain, so even p50 sits above the evicted values
        assert stats.percentiles()["p50"] >= 90.0
        assert stats.snapshot()["latency_samples"] == 10

    def test_invalid_max_samples(self):
        with pytest.raises(ValueError):
            ServerStats(max_samples=0)


class TestCountersAndOccupancy:
    def test_batch_occupancy_histogram(self):
        stats = ServerStats()
        stats.observe_batch(n_requests=3, n_samples=3)
        stats.observe_batch(n_requests=1, n_samples=64)
        stats.observe_batch(n_requests=2, n_samples=64)
        snap = stats.snapshot()
        assert snap["batch_occupancy"] == {"3": 1, "64": 2}
        assert snap["requests_completed"] == 6
        assert snap["samples_completed"] == 131
        assert stats.mean_occupancy() == pytest.approx(131 / 3)

    def test_mean_occupancy_before_first_batch(self):
        assert ServerStats().mean_occupancy() == 0.0

    def test_shed_and_error_counters(self):
        stats = ServerStats()
        stats.observe_shed()
        stats.observe_shed(4)
        stats.observe_error(2)
        assert stats.shed == 5
        assert stats.errors == 2

    def test_queue_depth_high_water_mark(self):
        stats = ServerStats()
        for depth in (3, 17, 5):
            stats.observe_queue_depth(depth)
        assert stats.snapshot()["max_queue_depth"] == 17


def test_snapshot_is_json_serialisable():
    stats = ServerStats()
    stats.observe_batch(2, 9)
    stats.observe_latency(123.4)
    stats.observe_shed()
    stats.observe_queue_depth(9)
    encoded = json.dumps(stats.snapshot())
    decoded = json.loads(encoded)
    assert decoded["shed"] == 1
    assert decoded["latency_us"]["p50"] == pytest.approx(123.4)
