"""Tests for the ServerStats collector."""

import json

import numpy as np
import pytest

from repro.serving import ServerStats


class TestPercentiles:
    def test_known_distribution(self):
        stats = ServerStats()
        values = np.arange(1.0, 101.0)
        for v in values:
            stats.observe_latency(v)
        result = stats.percentiles()
        assert result["p50"] == pytest.approx(np.percentile(values, 50))
        assert result["p95"] == pytest.approx(np.percentile(values, 95))
        assert result["p99"] == pytest.approx(np.percentile(values, 99))

    def test_empty_reservoir_is_zero_not_nan(self):
        result = ServerStats().percentiles()
        assert result == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_reservoir_keeps_recent_samples_only(self):
        stats = ServerStats(max_samples=10)
        for v in range(100):
            stats.observe_latency(float(v))
        # only 90..99 remain, so even p50 sits above the evicted values
        assert stats.percentiles()["p50"] >= 90.0
        assert stats.snapshot()["latency_samples"] == 10

    def test_invalid_max_samples(self):
        with pytest.raises(ValueError):
            ServerStats(max_samples=0)


class TestCountersAndOccupancy:
    def test_batch_occupancy_histogram(self):
        stats = ServerStats()
        stats.observe_batch(n_requests=3, n_samples=3)
        stats.observe_batch(n_requests=1, n_samples=64)
        stats.observe_batch(n_requests=2, n_samples=64)
        snap = stats.snapshot()
        assert snap["batch_occupancy"] == {"3": 1, "64": 2}
        assert snap["requests_completed"] == 6
        assert snap["samples_completed"] == 131
        assert stats.mean_occupancy() == pytest.approx(131 / 3)

    def test_mean_occupancy_before_first_batch(self):
        assert ServerStats().mean_occupancy() == 0.0

    def test_shed_and_error_counters(self):
        stats = ServerStats()
        stats.observe_shed()
        stats.observe_shed(4)
        stats.observe_error(2)
        assert stats.shed == 5
        assert stats.errors == 2

    def test_queue_depth_high_water_mark(self):
        stats = ServerStats()
        for depth in (3, 17, 5):
            stats.observe_queue_depth(depth)
        assert stats.snapshot()["max_queue_depth"] == 17


def test_snapshot_is_json_serialisable():
    stats = ServerStats()
    stats.observe_batch(2, 9)
    stats.observe_latency(123.4)
    stats.observe_shed()
    stats.observe_queue_depth(9)
    encoded = json.dumps(stats.snapshot())
    decoded = json.loads(encoded)
    assert decoded["shed"] == 1
    assert decoded["latency_us"]["p50"] == pytest.approx(123.4)


class TestRenderStatsText:
    """The Prometheus-style rendering behind the stats_text op."""

    def _snapshots(self):
        a, b = ServerStats(), ServerStats()
        a.observe_batch(3, 12)
        a.observe_latency(100.0)
        a.observe_latency(300.0)
        a.observe_shed()
        b.observe_batch(1, 1)
        b.observe_queue_depth(7)
        return {"alpha": a.snapshot(), "beta": b.snapshot()}

    def test_every_model_and_metric_labelled(self):
        from repro.serving import render_stats_text

        text = render_stats_text(self._snapshots())
        assert '# TYPE repro_serving_requests_completed counter' in text
        assert 'repro_serving_requests_completed{model="alpha"} 3' in text
        assert 'repro_serving_requests_completed{model="beta"} 1' in text
        assert 'repro_serving_shed{model="alpha"} 1' in text
        assert 'repro_serving_max_queue_depth{model="beta"} 7' in text
        assert (
            'repro_serving_latency_us{model="alpha",quantile="0.5"}' in text
        )
        assert text.endswith("\n")

    def test_type_headers_emitted_once_per_metric(self):
        from repro.serving import render_stats_text

        text = render_stats_text(self._snapshots())
        assert (
            text.count("# TYPE repro_serving_requests_completed counter") == 1
        )
        assert text.count("# TYPE repro_serving_latency_us gauge") == 1

    def test_label_escaping_and_custom_prefix(self):
        from repro.serving import render_stats_text

        stats = ServerStats()
        stats.observe_batch(1, 1)
        text = render_stats_text(
            {'we"ird\\name': stats.snapshot()}, prefix="poetbin"
        )
        assert 'poetbin_requests_completed{model="we\\"ird\\\\name"} 1' in text

    def test_empty_registry_renders_empty(self):
        from repro.serving import render_stats_text

        assert render_stats_text({}) == ""

    def test_backend_info_gauge(self):
        from repro.serving import render_stats_text

        text = render_stats_text(
            self._snapshots(),
            backends={"alpha": "native", "beta": "numpy"},
        )
        assert "# TYPE repro_serving_model_backend gauge" in text
        assert (
            'repro_serving_model_backend{model="alpha",backend="native"} 1'
            in text
        )
        assert (
            'repro_serving_model_backend{model="beta",backend="numpy"} 1'
            in text
        )
        # omitting the mapping omits the metric (back-compat rendering)
        assert "model_backend" not in render_stats_text(self._snapshots())

    def test_threads_gauge(self):
        from repro.serving import render_stats_text

        text = render_stats_text(
            self._snapshots(),
            backends={"alpha": "native-mt", "beta": "numpy"},
            threads={"alpha": 8, "beta": 1},
        )
        assert "# TYPE repro_serving_model_threads gauge" in text
        assert 'repro_serving_model_threads{model="alpha"} 8' in text
        assert 'repro_serving_model_threads{model="beta"} 1' in text
        assert (
            'repro_serving_model_backend{model="alpha",backend="native-mt"} 1'
            in text
        )
        # omitting the mapping omits the metric (back-compat rendering)
        assert "model_threads" not in render_stats_text(self._snapshots())

    def test_large_counters_render_exactly(self):
        """%g-style rounding past 6 significant digits would corrupt
        scraped rate() math on a long-lived server."""
        from repro.serving import render_stats_text

        stats = ServerStats()
        stats.observe_batch(1_234_567, 7_654_321)
        text = render_stats_text({"m": stats.snapshot()})
        assert 'repro_serving_requests_completed{model="m"} 1234567' in text
        assert 'repro_serving_samples_completed{model="m"} 7654321' in text


class TestNonFiniteRendering:
    """Regression (PR 6): inf/NaN in a snapshot used to crash the scrape.

    A model emitting non-finite latencies or scores can land inf/NaN in a
    stats snapshot; ``_format_value`` previously tried integer formatting
    on them (``OverflowError: cannot convert float infinity to integer``),
    taking down every later ``/metrics`` scrape.  Prometheus defines the
    spellings ``+Inf`` / ``-Inf`` / ``NaN`` — render those instead.
    """

    def test_inf_and_nan_render_prometheus_spellings(self):
        from repro.serving import render_stats_text

        stats = ServerStats()
        stats.observe_batch(1, 1)
        snap = stats.snapshot()
        snap["latency_us"] = {
            "p50": float("inf"),
            "p95": float("-inf"),
            "p99": float("nan"),
        }
        text = render_stats_text({"m": snap})
        assert 'repro_serving_latency_us{model="m",quantile="0.5"} +Inf' in text
        assert (
            'repro_serving_latency_us{model="m",quantile="0.95"} -Inf' in text
        )
        assert 'repro_serving_latency_us{model="m",quantile="0.99"} NaN' in text

    def test_format_value_unit(self):
        from repro.serving.stats import _format_value

        assert _format_value(float("inf")) == "+Inf"
        assert _format_value(float("-inf")) == "-Inf"
        assert _format_value(float("nan")) == "NaN"
        assert _format_value(3.0) == "3"
        assert _format_value(2.5) == "2.5"


class TestSnapshotAtomicity:
    def test_snapshot_is_consistent_under_concurrent_writers(self):
        """One lock acquisition covers counters + reservoir: a snapshot
        taken mid-traffic never pairs new counters with old latencies in a
        torn read, and never crashes on a mutating reservoir."""
        import threading

        stats = ServerStats()
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                stats.observe_batch(1, 1)
                stats.observe_latency(float(i % 1000))
                i += 1

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(200):
                snap = stats.snapshot()
                # requests == samples in this workload: a torn read across
                # the two counters would break the invariant
                assert snap["requests_completed"] == snap["samples_completed"]
                assert set(snap["latency_us"]) == {"p50", "p95", "p99"}
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=5)
