"""End-to-end socket tests: InferenceServer + ServingClient."""

import threading

import numpy as np
import pytest

from repro.serving import (
    BackgroundServer,
    BadRequestError,
    InferenceServer,
    ServerOverloadedError,
    ServingClient,
    ServingError,
)
from repro.utils.rng import as_rng

N_FEATURES = 16
N_CLASSES = 4


def _scores_fn(X):
    """Deterministic per-class scores: class c scores the c-th feature block."""
    X = np.asarray(X, dtype=np.float64)
    blocks = X.reshape(X.shape[0], N_CLASSES, N_FEATURES // N_CLASSES)
    return blocks.sum(axis=2) + 0.01 * np.arange(N_CLASSES)


def _expected_labels(X):
    return np.argmax(_scores_fn(X), axis=1)


@pytest.fixture()
def server():
    srv = InferenceServer(
        scores_fn=_scores_fn, max_batch=16, max_wait_us=2_000, max_queue=256
    )
    with BackgroundServer(srv) as handle:
        yield handle


class TestPredict:
    def test_labels_match_direct_evaluation(self, server):
        rng = as_rng(0)
        X = rng.integers(0, 2, size=(9, N_FEATURES)).astype(np.uint8)
        with ServingClient(*server.address) as client:
            np.testing.assert_array_equal(client.predict(X), _expected_labels(X))

    def test_single_sample_row_vector(self, server):
        x = np.zeros(N_FEATURES, dtype=np.uint8)
        x[:4] = 1  # all mass in class 0's block
        with ServingClient(*server.address) as client:
            assert client.predict(x).tolist() == [0]

    def test_return_scores(self, server):
        rng = as_rng(1)
        X = rng.integers(0, 2, size=(5, N_FEATURES)).astype(np.uint8)
        with ServingClient(*server.address) as client:
            labels, scores = client.predict(X, return_scores=True)
        np.testing.assert_allclose(scores, _scores_fn(X))
        np.testing.assert_array_equal(labels, _expected_labels(X))

    def test_many_requests_one_connection(self, server):
        rng = as_rng(2)
        with ServingClient(*server.address) as client:
            for _ in range(10):
                X = rng.integers(0, 2, size=(3, N_FEATURES)).astype(np.uint8)
                np.testing.assert_array_equal(
                    client.predict(X), _expected_labels(X)
                )

    def test_concurrent_clients_all_get_their_own_answers(self, server):
        rng = as_rng(3)
        batches = [
            rng.integers(0, 2, size=(2, N_FEATURES)).astype(np.uint8)
            for _ in range(8)
        ]
        results = [None] * len(batches)

        def worker(i):
            with ServingClient(*server.address) as client:
                results[i] = client.predict(batches[i])

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(len(batches))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for batch, result in zip(batches, results):
            np.testing.assert_array_equal(result, _expected_labels(batch))


class TestPipelining:
    def test_pipelined_requests_resolve_by_id(self, server):
        """Many requests in flight on one connection, matched via id echo."""
        import asyncio

        from repro.serving.protocol import read_message, write_message

        rng = as_rng(7)
        batches = {
            i: rng.integers(0, 2, size=(1, N_FEATURES)).astype(np.uint8)
            for i in range(20)
        }

        async def drive():
            reader, writer = await asyncio.open_connection(*server.address)
            try:
                for i, rows in batches.items():
                    await write_message(
                        writer,
                        {"op": "predict", "id": i, "features": rows.tolist()},
                    )
                responses = {}
                for _ in batches:
                    response = await read_message(reader)
                    assert response["ok"], response
                    responses[response["id"]] = response["labels"]
                return responses
            finally:
                writer.close()
                await writer.wait_closed()

        responses = asyncio.run(drive())
        assert sorted(responses) == sorted(batches)
        for i, rows in batches.items():
            np.testing.assert_array_equal(
                np.asarray(responses[i]), _expected_labels(rows)
            )


class TestOps:
    def test_ping(self, server):
        with ServingClient(*server.address) as client:
            assert client.ping()

    def test_stats_reflect_traffic(self, server):
        X = np.ones((4, N_FEATURES), dtype=np.uint8)
        with ServingClient(*server.address) as client:
            client.predict(X)
            snap = client.stats()
        assert snap["requests_completed"] >= 1
        assert snap["samples_completed"] >= 4
        assert set(snap["latency_us"]) == {"p50", "p95", "p99"}
        assert snap["latency_us"]["p99"] > 0.0

    def test_unknown_op_is_bad_request(self, server):
        with ServingClient(*server.address) as client:
            with pytest.raises(BadRequestError, match="unknown op"):
                client._request({"op": "transmogrify"})


class TestTypedErrors:
    def test_non_binary_features_rejected_not_truncated(self, server):
        with ServingClient(*server.address) as client:
            with pytest.raises(BadRequestError):
                client._request(
                    {"op": "predict", "features": [[0.5] * N_FEATURES]}
                )

    def test_client_predict_forwards_raw_values(self, server):
        """The client must not coerce 0.5 to 0 before the server can reject."""
        with ServingClient(*server.address) as client:
            with pytest.raises(BadRequestError):
                client.predict(np.full((2, N_FEATURES), 0.5))
            # exactly-binary floats are legitimate and must still serve
            labels = client.predict(np.ones((2, N_FEATURES), dtype=np.float64))
            np.testing.assert_array_equal(
                labels, _expected_labels(np.ones((2, N_FEATURES), dtype=np.uint8))
            )

    def test_ragged_features_rejected(self, server):
        with ServingClient(*server.address) as client:
            with pytest.raises(BadRequestError):
                client._request({"op": "predict", "features": [[0, 1], [0]]})

    def test_missing_features_rejected(self, server):
        with ServingClient(*server.address) as client:
            with pytest.raises(BadRequestError):
                client._request({"op": "predict"})

    def test_model_failure_is_internal_error(self):
        def broken(X):
            raise RuntimeError("weights fell out")

        srv = InferenceServer(
            batch_fn=broken, max_batch=4, max_wait_us=1_000, max_queue=64
        )
        with BackgroundServer(srv) as handle:
            with ServingClient(*handle.address) as client:
                with pytest.raises(ServingError, match="weights fell out"):
                    client.predict(np.ones((1, N_FEATURES), dtype=np.uint8))

    def test_shed_surfaces_as_overloaded_error_over_the_wire(self):
        srv = InferenceServer(
            scores_fn=_scores_fn,
            max_batch=1000,  # never flush by size
            max_wait_us=250_000,  # hold admitted requests for 250 ms
            max_queue=4,
        )
        outcomes = []
        lock = threading.Lock()

        def worker(address):
            try:
                with ServingClient(*address) as client:
                    client.predict(np.ones((1, N_FEATURES), dtype=np.uint8))
                with lock:
                    outcomes.append("ok")
            except ServerOverloadedError:
                with lock:
                    outcomes.append("shed")

        with BackgroundServer(srv) as handle:
            threads = [
                threading.Thread(target=worker, args=(handle.address,))
                for _ in range(12)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(outcomes) == 12
        # 4 queue slots, 12 one-sample requests arriving well inside the
        # 250 ms wait window: the overflow must shed with the typed error,
        # and the admitted requests must still be answered
        assert outcomes.count("shed") >= 1
        assert outcomes.count("ok") >= 4


class TestConstruction:
    def test_exactly_one_evaluation_fn(self):
        with pytest.raises(ValueError):
            InferenceServer()
        with pytest.raises(ValueError):
            InferenceServer(batch_fn=_scores_fn, scores_fn=_scores_fn)

    def test_scores_request_without_scores_path(self):
        def labels_only(X):
            return np.zeros(np.asarray(X).shape[0], dtype=np.int64)

        srv = InferenceServer(
            batch_fn=labels_only, max_batch=4, max_wait_us=1_000, max_queue=64
        )
        with BackgroundServer(srv) as handle:
            with ServingClient(*handle.address) as client:
                labels = client.predict(np.ones((2, N_FEATURES), dtype=np.uint8))
                assert labels.tolist() == [0, 0]
                with pytest.raises(BadRequestError, match="no scores path"):
                    client.predict(
                        np.ones((2, N_FEATURES), dtype=np.uint8),
                        return_scores=True,
                    )

    def test_for_model_prefers_scores_path(self):
        class Model:
            def decision_scores_batch(self, X, n_workers=None):
                return _scores_fn(X)

            def predict_batch(self, X):  # pragma: no cover - must not win
                raise AssertionError("scores path should be preferred")

        srv = InferenceServer.for_model(
            Model(), max_batch=8, max_wait_us=1_000, max_queue=64
        )
        rng = as_rng(4)
        X = rng.integers(0, 2, size=(3, N_FEATURES)).astype(np.uint8)
        with BackgroundServer(srv) as handle:
            with ServingClient(*handle.address) as client:
                labels, scores = client.predict(X, return_scores=True)
        np.testing.assert_allclose(scores, _scores_fn(X))

    def test_for_model_rejects_inert_objects(self):
        with pytest.raises(TypeError):
            InferenceServer.for_model(object())

    def test_warm_up_runs_before_first_request(self):
        ran = []
        srv = InferenceServer(
            scores_fn=_scores_fn,
            warm_up=lambda: ran.append(True),
            max_batch=4,
            max_wait_us=1_000,
            max_queue=64,
        )
        with BackgroundServer(srv):
            assert ran == [True]
