"""End-to-end socket tests: InferenceServer + ServingClient.

The multi-model suite covers the PR-5 contract: several models — different
feature widths, different engines — hosted behind one listener and one
shared WorkerPool, requests routed by the wire protocol's ``model`` field,
unknown names failing with the typed ``model_not_found`` error, and
per-model stats.
"""

import threading

import numpy as np
import pytest

from repro.engine import WorkerPool, compile_netlist, rinc_bank_netlist
from repro.serving import (
    BackgroundServer,
    BadRequestError,
    InferenceServer,
    ModelNotFoundError,
    ServerOverloadedError,
    ServingClient,
    ServingError,
)
from repro.utils.rng import as_rng

N_FEATURES = 16
N_CLASSES = 4


def _scores_fn(X):
    """Deterministic per-class scores: class c scores the c-th feature block."""
    X = np.asarray(X, dtype=np.float64)
    blocks = X.reshape(X.shape[0], N_CLASSES, N_FEATURES // N_CLASSES)
    return blocks.sum(axis=2) + 0.01 * np.arange(N_CLASSES)


def _expected_labels(X):
    return np.argmax(_scores_fn(X), axis=1)


@pytest.fixture()
def server():
    srv = InferenceServer(
        scores_fn=_scores_fn, max_batch=16, max_wait_us=2_000, max_queue=256
    )
    with BackgroundServer(srv) as handle:
        yield handle


class TestPredict:
    def test_labels_match_direct_evaluation(self, server):
        rng = as_rng(0)
        X = rng.integers(0, 2, size=(9, N_FEATURES)).astype(np.uint8)
        with ServingClient(*server.address) as client:
            np.testing.assert_array_equal(client.predict(X), _expected_labels(X))

    def test_single_sample_row_vector(self, server):
        x = np.zeros(N_FEATURES, dtype=np.uint8)
        x[:4] = 1  # all mass in class 0's block
        with ServingClient(*server.address) as client:
            assert client.predict(x).tolist() == [0]

    def test_return_scores(self, server):
        rng = as_rng(1)
        X = rng.integers(0, 2, size=(5, N_FEATURES)).astype(np.uint8)
        with ServingClient(*server.address) as client:
            labels, scores = client.predict(X, return_scores=True)
        np.testing.assert_allclose(scores, _scores_fn(X))
        np.testing.assert_array_equal(labels, _expected_labels(X))

    def test_many_requests_one_connection(self, server):
        rng = as_rng(2)
        with ServingClient(*server.address) as client:
            for _ in range(10):
                X = rng.integers(0, 2, size=(3, N_FEATURES)).astype(np.uint8)
                np.testing.assert_array_equal(
                    client.predict(X), _expected_labels(X)
                )

    def test_concurrent_clients_all_get_their_own_answers(self, server):
        rng = as_rng(3)
        batches = [
            rng.integers(0, 2, size=(2, N_FEATURES)).astype(np.uint8)
            for _ in range(8)
        ]
        results = [None] * len(batches)

        def worker(i):
            with ServingClient(*server.address) as client:
                results[i] = client.predict(batches[i])

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(len(batches))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for batch, result in zip(batches, results):
            np.testing.assert_array_equal(result, _expected_labels(batch))


class TestPipelining:
    def test_pipelined_requests_resolve_by_id(self, server):
        """Many requests in flight on one connection, matched via id echo."""
        import asyncio

        from repro.serving.protocol import read_message, write_message

        rng = as_rng(7)
        batches = {
            i: rng.integers(0, 2, size=(1, N_FEATURES)).astype(np.uint8)
            for i in range(20)
        }

        async def drive():
            reader, writer = await asyncio.open_connection(*server.address)
            try:
                for i, rows in batches.items():
                    await write_message(
                        writer,
                        {"op": "predict", "id": i, "features": rows.tolist()},
                    )
                responses = {}
                for _ in batches:
                    response = await read_message(reader)
                    assert response["ok"], response
                    responses[response["id"]] = response["labels"]
                return responses
            finally:
                writer.close()
                await writer.wait_closed()

        responses = asyncio.run(drive())
        assert sorted(responses) == sorted(batches)
        for i, rows in batches.items():
            np.testing.assert_array_equal(
                np.asarray(responses[i]), _expected_labels(rows)
            )


class TestOps:
    def test_ping(self, server):
        with ServingClient(*server.address) as client:
            assert client.ping()

    def test_stats_reflect_traffic(self, server):
        X = np.ones((4, N_FEATURES), dtype=np.uint8)
        with ServingClient(*server.address) as client:
            client.predict(X)
            snap = client.stats()
        assert snap["requests_completed"] >= 1
        assert snap["samples_completed"] >= 4
        assert set(snap["latency_us"]) == {"p50", "p95", "p99"}
        assert snap["latency_us"]["p99"] > 0.0

    def test_unknown_op_is_bad_request(self, server):
        with ServingClient(*server.address) as client:
            with pytest.raises(BadRequestError, match="unknown op"):
                client._request({"op": "transmogrify"})


class TestTypedErrors:
    def test_non_binary_features_rejected_not_truncated(self, server):
        with ServingClient(*server.address) as client:
            with pytest.raises(BadRequestError):
                client._request(
                    {"op": "predict", "features": [[0.5] * N_FEATURES]}
                )

    def test_client_predict_forwards_raw_values(self, server):
        """The client must not coerce 0.5 to 0 before the server can reject."""
        with ServingClient(*server.address) as client:
            with pytest.raises(BadRequestError):
                client.predict(np.full((2, N_FEATURES), 0.5))
            # exactly-binary floats are legitimate and must still serve
            labels = client.predict(np.ones((2, N_FEATURES), dtype=np.float64))
            np.testing.assert_array_equal(
                labels, _expected_labels(np.ones((2, N_FEATURES), dtype=np.uint8))
            )

    def test_ragged_features_rejected(self, server):
        with ServingClient(*server.address) as client:
            with pytest.raises(BadRequestError):
                client._request({"op": "predict", "features": [[0, 1], [0]]})

    def test_missing_features_rejected(self, server):
        with ServingClient(*server.address) as client:
            with pytest.raises(BadRequestError):
                client._request({"op": "predict"})

    def test_model_failure_is_internal_error(self):
        def broken(X):
            raise RuntimeError("weights fell out")

        srv = InferenceServer(
            batch_fn=broken, max_batch=4, max_wait_us=1_000, max_queue=64
        )
        with BackgroundServer(srv) as handle:
            with ServingClient(*handle.address) as client:
                with pytest.raises(ServingError, match="weights fell out"):
                    client.predict(np.ones((1, N_FEATURES), dtype=np.uint8))

    def test_shed_surfaces_as_overloaded_error_over_the_wire(self):
        srv = InferenceServer(
            scores_fn=_scores_fn,
            max_batch=1000,  # never flush by size
            max_wait_us=250_000,  # hold admitted requests for 250 ms
            max_queue=4,
        )
        outcomes = []
        lock = threading.Lock()

        def worker(address):
            try:
                with ServingClient(*address) as client:
                    client.predict(np.ones((1, N_FEATURES), dtype=np.uint8))
                with lock:
                    outcomes.append("ok")
            except ServerOverloadedError:
                with lock:
                    outcomes.append("shed")

        with BackgroundServer(srv) as handle:
            threads = [
                threading.Thread(target=worker, args=(handle.address,))
                for _ in range(12)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(outcomes) == 12
        # 4 queue slots, 12 one-sample requests arriving well inside the
        # 250 ms wait window: the overflow must shed with the typed error,
        # and the admitted requests must still be answered
        assert outcomes.count("shed") >= 1
        assert outcomes.count("ok") >= 4


class TestMultiModel:
    """Many models behind one listener, routed by the ``model`` field."""

    @pytest.fixture(scope="class")
    def banks(self):
        """Two compiled netlists with *different* feature widths."""
        wide = rinc_bank_netlist(
            n_primary_inputs=32, n_trees=24, n_mats=8, n_outputs=4,
            lut_width=4, seed=6,
        )
        narrow = rinc_bank_netlist(
            n_primary_inputs=16, n_trees=12, n_mats=6, n_outputs=3,
            lut_width=3, seed=7,
        )
        return {
            "wide": (32, compile_netlist(wide)),
            "narrow": (16, compile_netlist(narrow)),
        }

    @pytest.fixture()
    def multi_server(self, banks):
        srv = InferenceServer(
            max_batch=16, max_wait_us=2_000, max_queue=256,
            max_total_queue=512,
        )
        for name, (_, engine) in banks.items():
            srv.register_model(name, engine.predict_batch)
        with BackgroundServer(srv) as handle:
            yield handle

    def test_two_widths_concurrent_on_one_socket_bit_exact(
        self, banks, multi_server
    ):
        """Interleaved requests for both models on one pipelined connection
        come back bit-exact vs each model's direct predict_batch."""
        import asyncio

        from repro.serving.protocol import read_message, write_message

        rng = as_rng(8)
        requests = {}
        for i in range(30):
            name = "wide" if i % 2 else "narrow"
            width, engine = banks[name]
            rows = rng.integers(0, 2, size=(1 + i % 3, width)).astype(np.uint8)
            requests[i] = (name, rows, engine.predict_batch(rows))

        async def drive():
            reader, writer = await asyncio.open_connection(
                *multi_server.address
            )
            try:
                for i, (name, rows, _) in requests.items():
                    await write_message(
                        writer,
                        {
                            "op": "predict",
                            "id": i,
                            "model": name,
                            "features": rows.tolist(),
                        },
                    )
                responses = {}
                for _ in requests:
                    response = await read_message(reader)
                    assert response["ok"], response
                    responses[response["id"]] = response["labels"]
                return responses
            finally:
                writer.close()
                await writer.wait_closed()

        responses = asyncio.run(drive())
        assert sorted(responses) == sorted(requests)
        for i, (_, _, expected) in requests.items():
            np.testing.assert_array_equal(np.asarray(responses[i]), expected)

    def test_default_model_is_first_registered(self, banks, multi_server):
        rng = as_rng(9)
        width, engine = banks["wide"]
        rows = rng.integers(0, 2, size=(3, width)).astype(np.uint8)
        with ServingClient(*multi_server.address) as client:
            listing = client.list_models()
            assert listing["default"] == "wide"
            assert sorted(m["name"] for m in listing["models"]) == [
                "narrow",
                "wide",
            ]
            # no model field → the default model serves
            np.testing.assert_array_equal(
                client.predict(rows), engine.predict_batch(rows)
            )

    def test_unknown_model_round_trips_typed(self, multi_server):
        with ServingClient(*multi_server.address) as client:
            with pytest.raises(ModelNotFoundError, match="unknown model"):
                client.predict(
                    np.ones((1, 32), dtype=np.uint8), model="nonesuch"
                )
            with pytest.raises(ModelNotFoundError):
                client.stats(model="nonesuch")
            # a non-string model field is a bad_request, not a crash
            with pytest.raises(BadRequestError, match="must be a string"):
                client._request(
                    {"op": "predict", "model": 7, "features": [[0] * 32]}
                )

    def test_stats_are_per_model(self, banks, multi_server):
        rng = as_rng(10)
        with ServingClient(*multi_server.address) as client:
            client.predict(
                rng.integers(0, 2, size=(5, 16)).astype(np.uint8),
                model="narrow",
            )
            narrow = client.stats(model="narrow")
            wide = client.stats(model="wide")
        assert narrow["samples_completed"] >= 5
        assert wide["samples_completed"] == 0  # traffic never leaked across

    def test_stats_text_covers_every_model(self, multi_server):
        with ServingClient(*multi_server.address) as client:
            text = client.stats_text()
        assert 'model="wide"' in text
        assert 'model="narrow"' in text
        assert "# TYPE repro_serving_requests_completed counter" in text

    def test_backend_label_in_listing_and_metrics(self, multi_server):
        """Every hosted model advertises its evaluation backend."""
        with ServingClient(*multi_server.address) as client:
            listing = client.list_models()
            text = client.stats_text()
        for entry in listing["models"]:
            assert entry["backend"] == "numpy"
        assert "# TYPE repro_serving_model_backend gauge" in text
        assert (
            'repro_serving_model_backend{model="wide",backend="numpy"} 1'
            in text
        )
        assert (
            'repro_serving_model_backend{model="narrow",backend="numpy"} 1'
            in text
        )

    def test_empty_server_rejects_predict_with_model_not_found(self):
        srv = InferenceServer(max_batch=4, max_wait_us=1_000, max_queue=64)
        with BackgroundServer(srv) as handle:
            with ServingClient(*handle.address) as client:
                with pytest.raises(ModelNotFoundError, match="no models"):
                    client.predict(np.ones((1, 8), dtype=np.uint8))

    def test_register_while_serving_and_unregister(self, banks):
        """Models can be added behind a live listener; dropped ones 404."""
        import asyncio

        width, engine = banks["narrow"]
        rng = as_rng(11)
        rows = rng.integers(0, 2, size=(2, width)).astype(np.uint8)
        srv = InferenceServer(max_batch=4, max_wait_us=1_000, max_queue=64)
        with BackgroundServer(srv) as handle:
            srv.register_model("late", engine.predict_batch)
            with ServingClient(*handle.address) as client:
                np.testing.assert_array_equal(
                    client.predict(rows, model="late"),
                    engine.predict_batch(rows),
                )
            future = asyncio.run_coroutine_threadsafe(
                srv.unregister_model("late"), handle._loop
            )
            future.result(timeout=10)
            with ServingClient(*handle.address) as client:
                with pytest.raises(ModelNotFoundError):
                    client.predict(rows, model="late")

    def test_shared_pool_behind_two_models(self, banks):
        """Both models' engines ride one WorkerPool; results stay bit-exact."""
        from repro.engine import ShardedEngine

        rng = as_rng(12)
        with WorkerPool(n_workers=2, min_words_per_worker=1) as pool:
            srv = InferenceServer(
                max_batch=32, max_wait_us=2_000, max_queue=256
            )
            views = {}
            for name, (width, engine) in banks.items():
                # rebuild each bank's netlist view over the shared pool
                views[name] = ShardedEngine(
                    rinc_bank_netlist(
                        n_primary_inputs=width,
                        n_trees=24 if name == "wide" else 12,
                        n_mats=8 if name == "wide" else 6,
                        n_outputs=4 if name == "wide" else 3,
                        lut_width=4 if name == "wide" else 3,
                        seed=6 if name == "wide" else 7,
                    ),
                    pool=pool,
                    model_id=name,
                )
                srv.register_model(name, views[name].predict_batch)
            assert sorted(pool.model_ids) == ["narrow", "wide"]
            with BackgroundServer(srv) as handle:
                with ServingClient(*handle.address) as client:
                    for name, (width, engine) in banks.items():
                        rows = rng.integers(0, 2, size=(130, width)).astype(
                            np.uint8
                        )
                        np.testing.assert_array_equal(
                            client.predict(rows, model=name),
                            engine.predict_batch(rows),
                        )


class TestConstruction:
    def test_at_most_one_evaluation_fn(self):
        with pytest.raises(ValueError):
            InferenceServer(batch_fn=_scores_fn, scores_fn=_scores_fn)
        # no functions at all is legal now: an empty multi-model server,
        # populated later with register_model (requests meanwhile get the
        # typed model_not_found error)
        empty = InferenceServer(max_batch=4, max_wait_us=1_000, max_queue=64)
        assert empty.registry.names == []

    def test_scores_request_without_scores_path(self):
        def labels_only(X):
            return np.zeros(np.asarray(X).shape[0], dtype=np.int64)

        srv = InferenceServer(
            batch_fn=labels_only, max_batch=4, max_wait_us=1_000, max_queue=64
        )
        with BackgroundServer(srv) as handle:
            with ServingClient(*handle.address) as client:
                labels = client.predict(np.ones((2, N_FEATURES), dtype=np.uint8))
                assert labels.tolist() == [0, 0]
                with pytest.raises(BadRequestError, match="no scores path"):
                    client.predict(
                        np.ones((2, N_FEATURES), dtype=np.uint8),
                        return_scores=True,
                    )

    def test_for_model_prefers_scores_path(self):
        class Model:
            def decision_scores_batch(self, X, n_workers=None):
                return _scores_fn(X)

            def predict_batch(self, X):  # pragma: no cover - must not win
                raise AssertionError("scores path should be preferred")

        srv = InferenceServer.for_model(
            Model(), max_batch=8, max_wait_us=1_000, max_queue=64
        )
        rng = as_rng(4)
        X = rng.integers(0, 2, size=(3, N_FEATURES)).astype(np.uint8)
        with BackgroundServer(srv) as handle:
            with ServingClient(*handle.address) as client:
                labels, scores = client.predict(X, return_scores=True)
        np.testing.assert_allclose(scores, _scores_fn(X))

    def test_for_model_rejects_inert_objects(self):
        with pytest.raises(TypeError):
            InferenceServer.for_model(object())

    def test_for_model_ignores_sharding_kwargs_the_model_lacks(self):
        """A bare predict_batch(X) engine must serve even with n_workers
        given (the pre-refactor behaviour: silently unforwarded)."""

        class BareEngine:
            def predict_batch(self, X):
                return np.zeros(np.asarray(X).shape[0], dtype=np.int64)

        srv = InferenceServer.for_model(
            BareEngine(), n_workers=4, max_batch=4, max_wait_us=1_000,
            max_queue=64,
        )
        with BackgroundServer(srv) as handle:
            with ServingClient(*handle.address) as client:
                labels = client.predict(np.ones((2, N_FEATURES), dtype=np.uint8))
        assert labels.tolist() == [0, 0]

    def test_for_model_rejects_both_n_workers_and_pool(self):
        class Model:
            def predict_batch(self, X, n_workers=None, pool=None):
                return np.zeros(np.asarray(X).shape[0], dtype=np.int64)

        with pytest.raises(ValueError, match="at most one"):
            InferenceServer.for_model(Model(), n_workers=2, pool=object())

    def test_empty_server_stats_property_is_inert(self):
        srv = InferenceServer(max_batch=4, max_wait_us=1_000, max_queue=64)
        assert srv.stats.snapshot()["requests_completed"] == 0

    def test_register_model_rejects_sharding_kwargs_without_model(self):
        srv = InferenceServer(max_batch=4, max_wait_us=1_000, max_queue=64)
        with pytest.raises(ValueError, match="apply to model="):
            srv.register_model("m", _scores_fn, pool=object())

    def test_unregistering_the_default_clears_it(self):
        """Model-less requests must not silently re-route to a survivor."""
        import asyncio

        srv = InferenceServer(max_batch=4, max_wait_us=1_000, max_queue=64)
        srv.register_model("first", batch_fn=lambda X: np.zeros(len(X)))
        srv.register_model("second", batch_fn=lambda X: np.ones(len(X)))
        assert srv.registry.default_name == "first"
        asyncio.run(srv.unregister_model("first"))
        assert srv.registry.default_name is None
        with pytest.raises(ModelNotFoundError, match="no default model"):
            srv.registry.resolve(None)
        # the next registration (or default=True) re-points it
        srv.register_model("third", batch_fn=lambda X: np.zeros(len(X)))
        assert srv.registry.default_name == "third"

    def test_backend_selection_forwards_and_labels(self):
        """``backend=`` reaches the model's ``engine_backend`` kwarg and
        the resolved label lands on the registration."""
        from repro.serving.server import _resolved_backend

        seen = []

        class Model:
            def predict_batch(self, X, engine_backend="numpy"):
                seen.append(engine_backend)
                return np.zeros(np.asarray(X).shape[0], dtype=np.int64)

        srv = InferenceServer(max_batch=4, max_wait_us=1_000, max_queue=64)
        entry = srv.register_model("m", model=Model(), backend="numpy")
        assert entry.backend == "numpy"
        assert entry.describe()["backend"] == "numpy"
        # the auto label matches what the host toolchain can deliver
        from repro.engine.native import toolchain_available

        expected = "native" if toolchain_available() else "numpy"
        assert _resolved_backend("auto") == expected
        entry2 = srv.register_model("m2", model=Model(), backend="auto")
        assert entry2.backend == expected

        # a backend nobody implements is rejected at registration time
        with pytest.raises(ValueError, match="unknown backend"):
            srv.register_model("m3", model=Model(), backend="fortran")

    def test_native_mt_label_threads_and_gauge(self):
        """``backend="native-mt"`` advertises its thread/unroll choice: in
        ``list_models`` (describe) and the model_threads gauge."""
        from repro.engine.native import DEFAULT_UNROLL, default_thread_count
        from repro.serving.server import _resolved_threads, _resolved_unroll

        class Model:
            def predict_batch(self, X, engine_backend="numpy"):
                return np.zeros(np.asarray(X).shape[0], dtype=np.int64)

        srv = InferenceServer(max_batch=4, max_wait_us=1_000, max_queue=64)
        entry = srv.register_model(
            "mt", model=Model(), backend="native-mt", threads=6, unroll=8
        )
        assert entry.backend == "native-mt"
        assert entry.threads == 6
        assert entry.unroll == 8
        assert entry.describe()["threads"] == 6
        assert entry.describe()["unroll"] == 8
        # default resolution: host core count / autotuner lane count for
        # native-mt, scalar for everything else
        assert _resolved_threads("native-mt", None) == default_thread_count()
        assert _resolved_threads("numpy", None) == 1
        assert _resolved_unroll("native-mt", None) == DEFAULT_UNROLL
        assert _resolved_unroll("numpy", None) == 1
        with pytest.raises(ValueError, match="threads"):
            srv.register_model(
                "bad", model=Model(), backend="native-mt", threads=0
            )
        with pytest.raises(ValueError, match="unroll"):
            srv.register_model(
                "bad", model=Model(), backend="native-mt", unroll=0
            )
        plain = srv.register_model("plain", model=Model(), backend="numpy")
        assert plain.threads == 1
        assert plain.unroll == 1
        text = srv.render_metrics()
        assert "# TYPE repro_serving_model_threads gauge" in text
        assert 'repro_serving_model_threads{model="mt"} 6' in text
        assert 'repro_serving_model_threads{model="plain"} 1' in text
        assert (
            'repro_serving_model_backend{model="mt",backend="native-mt"} 1'
            in text
        )

    def test_for_model_backend_reaches_the_engine(self):
        """End to end: backend= on for_model selects the model's engine."""
        seen = []

        class Model:
            def predict_batch(self, X, engine_backend="numpy"):
                seen.append(engine_backend)
                return np.zeros(np.asarray(X).shape[0], dtype=np.int64)

        srv = InferenceServer.for_model(
            Model(), backend="numpy", max_batch=4, max_wait_us=1_000,
            max_queue=64,
        )
        with BackgroundServer(srv) as handle:
            with ServingClient(*handle.address) as client:
                client.predict(np.ones((2, N_FEATURES), dtype=np.uint8))
                listing = client.list_models()
        assert seen == ["numpy"]
        assert listing["models"][0]["backend"] == "numpy"

    def test_warm_up_runs_before_first_request(self):
        ran = []
        srv = InferenceServer(
            scores_fn=_scores_fn,
            warm_up=lambda: ran.append(True),
            max_batch=4,
            max_wait_us=1_000,
            max_queue=64,
        )
        with BackgroundServer(srv):
            assert ran == [True]


# --------------------------------------------------------------------- PR 6
# Binary wire protocol end-to-end, mixed-protocol pipelining, the JSON
# non-finite regression, and the plain-HTTP /metrics listener.


class TestBinaryEndToEnd:
    def test_binary_labels_bit_exact_vs_json_without_packed_fn(self, server):
        """No packed_fn registered: the server unpacks once and falls back
        to the batch path — results must still match the JSON protocol."""
        rng = as_rng(21)
        X = rng.integers(0, 2, size=(130, N_FEATURES)).astype(np.uint8)
        with ServingClient(*server.address) as json_client:
            expected = json_client.predict(X)
        with ServingClient(*server.address, binary=True) as client:
            np.testing.assert_array_equal(client.predict(X), expected)
            labels, scores = client.predict(X, return_scores=True)
            np.testing.assert_array_equal(labels, expected)
            np.testing.assert_allclose(scores, _scores_fn(X))

    def test_binary_zero_copy_packed_fn_is_used_and_bit_exact(self):
        """With a packed_fn the engine sees words, never a byte matrix."""
        from repro.engine import packed_weighted_sums, unpack_bits

        rng = as_rng(22)
        weights = rng.integers(-5, 6, size=(N_FEATURES, N_CLASSES)).astype(
            np.int64
        )
        packed_calls = []

        def scores_fn(X):
            return np.asarray(X, dtype=np.int64) @ weights

        def packed_fn(words, n_samples):
            packed_calls.append(n_samples)
            return np.stack(
                [
                    packed_weighted_sums(words, weights[:, c], n_samples)
                    for c in range(N_CLASSES)
                ],
                axis=1,
            ).astype(np.float64)

        srv = InferenceServer(
            scores_fn=scores_fn,
            packed_fn=packed_fn,
            max_batch=32,
            max_wait_us=1_000,
            max_queue=256,
        )
        with BackgroundServer(srv) as handle:
            X = rng.integers(0, 2, size=(77, N_FEATURES)).astype(np.uint8)
            with ServingClient(*handle.address, binary=True) as client:
                labels = client.predict(X)
        assert sum(packed_calls) == 77  # every sample went the packed route
        np.testing.assert_array_equal(labels, np.argmax(scores_fn(X), axis=1))

    def test_for_model_wires_decision_scores_packed_batch(self):
        """A model object exposing the packed entry point gets it used."""
        from repro.engine import unpack_bits

        calls = []

        class PackedModel:
            def decision_scores_batch(self, X):
                return np.asarray(X, dtype=np.float64)

            def decision_scores_packed_batch(self, words, n_samples):
                calls.append(n_samples)
                return unpack_bits(words, n_samples).astype(np.float64)

        srv = InferenceServer.for_model(
            PackedModel(), max_batch=16, max_wait_us=500, max_queue=64
        )
        X = np.eye(N_FEATURES, dtype=np.uint8)
        with BackgroundServer(srv) as handle:
            with ServingClient(*handle.address, binary=True) as client:
                labels = client.predict(X)
        assert calls and sum(calls) == N_FEATURES
        np.testing.assert_array_equal(labels, np.arange(N_FEATURES))


class TestMixedProtocolPipelining:
    def test_json_and_binary_interleaved_on_one_connection(self, server):
        """Both protocols pipelined on one socket, re-associated by id."""
        import asyncio

        from repro.engine import pack_bits
        from repro.serving.binary_protocol import (
            _COMMON,
            _REPLY_HEAD,
            BINARY_MAGIC,
            _parse_reply,
            encode_predict_request,
        )
        from repro.serving.protocol import read_message

        rng = as_rng(23)
        batches = {
            i: rng.integers(0, 2, size=(1 + i % 3, N_FEATURES)).astype(
                np.uint8
            )
            for i in range(24)
        }

        async def read_any_reply(reader):
            first = await reader.readexactly(1)
            if first[0] != BINARY_MAGIC:
                rest = await reader.readexactly(3)
                import struct

                (length,) = struct.unpack(">I", first + rest)
                body = await reader.readexactly(length)
                import json

                message = json.loads(body.decode("utf-8"))
                return message["id"], np.asarray(message["labels"])
            _, _, opcode, flags, request_id = _COMMON.unpack(
                first + await reader.readexactly(_COMMON.size - 1)
            )
            assert opcode == 0x02, f"unexpected opcode {opcode}"
            head = await reader.readexactly(_REPLY_HEAD.size)
            samples, n_classes = _REPLY_HEAD.unpack(head)
            body = await reader.readexactly(
                samples * 8 + (samples * n_classes * 8 if flags & 1 else 0)
            )
            reply = _parse_reply(flags, request_id, head, body)
            return reply.request_id, reply.labels

        async def drive():
            reader, writer = await asyncio.open_connection(*server.address)
            try:
                for i, rows in batches.items():
                    if i % 2:  # odd ids go binary, even ids go JSON
                        writer.write(
                            encode_predict_request(
                                pack_bits(rows), rows.shape[0], request_id=i
                            )
                        )
                    else:
                        from repro.serving.protocol import write_message

                        await write_message(
                            writer,
                            {
                                "op": "predict",
                                "id": i,
                                "features": rows.tolist(),
                            },
                        )
                await writer.drain()
                responses = {}
                for _ in batches:
                    request_id, labels = await read_any_reply(reader)
                    responses[request_id] = labels
                return responses
            finally:
                writer.close()
                await writer.wait_closed()

        responses = asyncio.run(drive())
        assert sorted(responses) == sorted(batches)
        for i, rows in batches.items():
            np.testing.assert_array_equal(
                np.asarray(responses[i]), _expected_labels(rows)
            )


class TestNonFiniteScores:
    """Regression: a model emitting NaN/inf used to kill the connection.

    Pre-PR, ``json.dumps`` happily wrote ``NaN`` (invalid JSON) into the
    frame; a spec-compliant peer would choke mid-stream.  Now the JSON
    protocol refuses at encode time and the server converts that refusal
    into a typed ``internal`` error — the connection survives.  The binary
    protocol ships raw doubles, so the same scores cross losslessly.
    """

    @staticmethod
    def _nan_server():
        def scores_fn(X):
            scores = np.zeros((len(X), N_CLASSES))
            scores[:, 0] = np.nan
            scores[:, 1] = 1.0
            return scores

        return InferenceServer(
            scores_fn=scores_fn, max_batch=8, max_wait_us=500, max_queue=64
        )

    def test_nan_score_over_json_is_typed_internal_not_desync(self):
        with BackgroundServer(self._nan_server()) as handle:
            with ServingClient(*handle.address) as client:
                X = np.zeros((2, N_FEATURES), dtype=np.uint8)
                with pytest.raises(ServingError, match="not representable"):
                    client.predict(X, return_scores=True)
                # the error was a complete, typed frame: same connection
                # works (labels argmax to the NaN column, numpy semantics)
                np.testing.assert_array_equal(
                    client.predict(X), np.zeros(2, dtype=np.int64)
                )
                assert client.ping()

    def test_nan_score_over_binary_round_trips_losslessly(self):
        with BackgroundServer(self._nan_server()) as handle:
            with ServingClient(*handle.address, binary=True) as client:
                X = np.zeros((3, N_FEATURES), dtype=np.uint8)
                labels, scores = client.predict(X, return_scores=True)
        np.testing.assert_array_equal(labels, np.zeros(3, dtype=np.int64))
        assert np.isnan(scores[:, 0]).all()
        np.testing.assert_array_equal(scores[:, 1], np.ones(3))


class TestHttpMetrics:
    @pytest.fixture()
    def http_server(self):
        srv = InferenceServer(
            scores_fn=_scores_fn,
            max_batch=16,
            max_wait_us=1_000,
            max_queue=256,
            http_port=0,
        )
        with BackgroundServer(srv) as handle:
            yield srv, handle

    @staticmethod
    def _get(address, path):
        import urllib.request

        host, port = address
        return urllib.request.urlopen(
            f"http://{host}:{port}{path}", timeout=5
        )

    def test_metrics_over_plain_http(self, http_server):
        srv, handle = http_server
        with ServingClient(*handle.address) as client:
            client.predict(np.ones((5, N_FEATURES), dtype=np.uint8))
        with self._get(srv.http_address, "/metrics") as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            body = response.read().decode("utf-8")
        assert "repro_serving_requests_completed" in body
        assert 'model="default"' in body
        # the wire op and the HTTP endpoint render the same exposition
        with ServingClient(*handle.address) as client:
            assert "repro_serving_requests_completed" in client.stats_text()

    def test_healthz(self, http_server):
        srv, _ = http_server
        with self._get(srv.http_address, "/healthz") as response:
            assert response.status == 200
            assert response.read() == b"ok\n"

    def test_unknown_path_is_404(self, http_server):
        import urllib.error

        srv, _ = http_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(srv.http_address, "/nope")
        assert excinfo.value.code == 404

    def test_post_is_405(self, http_server):
        import urllib.error
        import urllib.request

        srv, _ = http_server
        host, port = srv.http_address
        request = urllib.request.Request(
            f"http://{host}:{port}/metrics", data=b"x", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 405

    def test_http_address_none_without_http_port(self):
        srv = InferenceServer(
            scores_fn=_scores_fn, max_batch=4, max_wait_us=500, max_queue=16
        )
        assert srv.http_address is None
