"""Framing tests for the length-prefixed JSON protocol."""

import asyncio
import socket
import struct

import pytest

from repro.serving import protocol, transport
from repro.serving.protocol import (
    ProtocolError,
    encode_message,
    read_message,
    recv_message,
    send_message,
)


def test_encode_is_length_prefixed_json():
    frame = encode_message({"op": "ping"})
    (length,) = struct.unpack(">I", frame[:4])
    assert length == len(frame) - 4
    assert frame[4:] == b'{"op":"ping"}'


class TestBlockingTransport:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            payload = {"op": "predict", "features": [[0, 1], [1, 0]]}
            send_message(a, payload)
            assert recv_message(b) == payload
        finally:
            a.close()
            b.close()

    def test_multiple_messages_keep_framing(self):
        a, b = socket.socketpair()
        try:
            for i in range(5):
                send_message(a, {"i": i})
            assert [recv_message(b)["i"] for _ in range(5)] == list(range(5))
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_message(b) is None
        finally:
            b.close()

    def test_mid_header_close_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00")  # half a header
            a.close()
            with pytest.raises(ProtocolError, match="mid-header"):
                recv_message(b)
        finally:
            b.close()

    def test_mid_message_close_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 100) + b'{"truncated"')
            a.close()
            with pytest.raises(ProtocolError, match="mid-message"):
                recv_message(b)
        finally:
            b.close()

    def test_oversized_frame_rejected_without_allocation(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", protocol.MAX_MESSAGE_BYTES + 1))
            with pytest.raises(ProtocolError, match="cap"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_invalid_json_raises(self):
        a, b = socket.socketpair()
        try:
            body = b"not json at all"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError, match="invalid JSON"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_non_object_payload_raises(self):
        a, b = socket.socketpair()
        try:
            body = b"[1, 2, 3]"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError, match="JSON object"):
                recv_message(b)
        finally:
            a.close()
            b.close()


def test_encode_respects_cap(monkeypatch):
    # the codec lives in transport (protocol is a re-export shim), so the
    # cap must be patched where the implementation reads it
    monkeypatch.setattr(transport, "MAX_MESSAGE_BYTES", 8)
    with pytest.raises(ProtocolError, match="cap"):
        encode_message({"op": "a message longer than eight bytes"})


class TestAsyncTransport:
    def _reader_with(self, data: bytes, eof: bool = True) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        if eof:
            reader.feed_eof()
        return reader

    def test_round_trip(self):
        payload = {"op": "stats", "nested": {"a": [1, 2]}}

        async def main():
            reader = self._reader_with(encode_message(payload))
            return await read_message(reader)

        assert asyncio.run(main()) == payload

    def test_clean_eof_returns_none(self):
        async def main():
            return await read_message(self._reader_with(b""))

        assert asyncio.run(main()) is None

    def test_mid_header_eof_raises(self):
        async def main():
            return await read_message(self._reader_with(b"\x00"))

        with pytest.raises(ProtocolError, match="mid-header"):
            asyncio.run(main())

    def test_mid_message_eof_raises(self):
        async def main():
            reader = self._reader_with(struct.pack(">I", 50) + b"{}")
            return await read_message(reader)

        with pytest.raises(ProtocolError, match="mid-message"):
            asyncio.run(main())

    def test_oversized_frame_rejected(self):
        async def main():
            reader = self._reader_with(
                struct.pack(">I", protocol.MAX_MESSAGE_BYTES + 1), eof=False
            )
            return await read_message(reader)

        with pytest.raises(ProtocolError, match="cap"):
            asyncio.run(main())
