"""Regression tests for ServingClient's stream discipline.

Pre-PR, a request that timed out (or died mid-frame) left the reply bytes
in the socket buffer; the *next* request on the same client would read the
stale reply as its own — silently wrong answers, off by one forever after.
These tests pin the fix: the first timeout / protocol error / mid-frame
connection failure marks the client dead, and every later call raises the
typed :class:`~repro.serving.client.StaleConnectionError` instead of
desyncing.
"""

import socket
import struct
import threading

import numpy as np
import pytest

from repro.serving import (
    BackgroundServer,
    InferenceServer,
    ProtocolError,
    ServingClient,
    ServingError,
    StaleConnectionError,
    encode_message,
    recv_message,
    send_message,
)

N_FEATURES = 8


def _scores_fn(X):
    return np.asarray(X, dtype=np.float64) @ np.eye(N_FEATURES)


class _ScriptedServer:
    """A one-connection fake server whose replies we control byte-by-byte."""

    def __init__(self, conn_script):
        self._script = conn_script
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.address = self._listener.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        conn, _ = self._listener.accept()
        try:
            self._script(conn)
        except OSError:
            pass  # the client hanging up mid-script is part of the tests
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def close(self):
        self._listener.close()
        self._thread.join(timeout=5)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


class TestTimeoutDesync:
    def test_reuse_after_timeout_raises_stale_not_garbage(self):
        """The late reply must never be read as the next request's answer."""
        release = threading.Event()

        def script(conn):
            first = recv_message(conn)  # consume request 1, reply late
            release.wait(timeout=10)
            send_message(conn, {"ok": True, "labels": [41], "id": first.get("id")})
            recv_message(conn)  # drain whatever else arrives

        with _ScriptedServer(script) as server:
            client = ServingClient(*server.address, timeout=0.2)
            with pytest.raises(socket.timeout):
                client.predict(np.zeros((1, N_FEATURES), dtype=np.uint8))
            release.set()  # stale reply for request 1 lands in the buffer
            # pre-PR: this would read labels=[41] meant for the first request
            with pytest.raises(StaleConnectionError, match="half-consumed"):
                client.predict(np.ones((1, N_FEATURES), dtype=np.uint8))
            with pytest.raises(StaleConnectionError):
                client.ping()
            client.close()

    def test_binary_client_reuse_after_timeout_raises_stale(self):
        def script(conn):
            conn.recv(65536)  # swallow the frame, never answer
            threading.Event().wait(0.5)

        with _ScriptedServer(script) as server:
            client = ServingClient(*server.address, timeout=0.2, binary=True)
            with pytest.raises(socket.timeout):
                client.predict(np.zeros((1, N_FEATURES), dtype=np.uint8))
            with pytest.raises(StaleConnectionError):
                client.predict(np.zeros((1, N_FEATURES), dtype=np.uint8))
            client.close()


class TestMidFrameDeath:
    def test_half_frame_then_close_marks_dead(self):
        """A reply cut mid-frame is a ProtocolError; reuse is refused."""

        def script(conn):
            recv_message(conn)
            frame = encode_message({"ok": True, "labels": [1]})
            conn.sendall(frame[: len(frame) - 4])  # header + partial body

        with _ScriptedServer(script) as server:
            client = ServingClient(*server.address, timeout=2.0)
            with pytest.raises(ProtocolError, match="mid-message"):
                client.predict(np.zeros((1, N_FEATURES), dtype=np.uint8))
            with pytest.raises(StaleConnectionError):
                client.predict(np.zeros((1, N_FEATURES), dtype=np.uint8))
            client.close()

    def test_clean_close_marks_dead_with_connection_error(self):
        def script(conn):
            recv_message(conn)  # read the request, hang up without replying

        with _ScriptedServer(script) as server:
            client = ServingClient(*server.address, timeout=2.0)
            with pytest.raises(ConnectionError, match="closed"):
                client.predict(np.zeros((1, N_FEATURES), dtype=np.uint8))
            with pytest.raises(StaleConnectionError):
                client.ping()
            client.close()

    def test_oversized_length_header_marks_dead(self):
        def script(conn):
            recv_message(conn)
            conn.sendall(struct.pack(">I", 2**31))  # absurd frame length

        with _ScriptedServer(script) as server:
            client = ServingClient(*server.address, timeout=2.0)
            with pytest.raises(ProtocolError):
                client.ping()
            with pytest.raises(StaleConnectionError):
                client.ping()
            client.close()


class TestTypedErrorsDoNotKillTheConnection:
    def test_server_side_errors_leave_the_client_usable(self):
        """Complete error frames are consumed whole — no desync, no staleness."""
        server = InferenceServer(
            scores_fn=_scores_fn, max_batch=8, max_wait_us=500, max_queue=64
        )
        with BackgroundServer(server) as handle:
            with ServingClient(*handle.address) as client:
                with pytest.raises(ServingError):
                    client.stats(model="no-such-model")
                rows = np.eye(N_FEATURES, dtype=np.uint8)[:3]
                np.testing.assert_array_equal(
                    client.predict(rows), np.arange(3)
                )

    def test_binary_typed_error_leaves_the_client_usable(self):
        server = InferenceServer(
            scores_fn=_scores_fn, max_batch=8, max_wait_us=500, max_queue=64
        )
        with BackgroundServer(server) as handle:
            with ServingClient(*handle.address, binary=True) as client:
                with pytest.raises(ServingError):
                    client.predict(
                        np.zeros((1, N_FEATURES), dtype=np.uint8),
                        model="no-such-model",
                    )
                rows = np.eye(N_FEATURES, dtype=np.uint8)[:3]
                np.testing.assert_array_equal(
                    client.predict(rows), np.arange(3)
                )


class TestIdempotentClose:
    """The context-manager satellite: close() is idempotent and final."""

    @pytest.fixture()
    def server(self):
        srv = InferenceServer(
            scores_fn=_scores_fn, max_batch=8, max_wait_us=500, max_queue=64
        )
        with BackgroundServer(srv) as handle:
            yield handle

    def test_close_twice_is_fine(self, server):
        client = ServingClient(*server.address)
        client.predict(np.ones((1, N_FEATURES), dtype=np.uint8))
        client.close()
        client.close()  # second close is a no-op, not an error
        assert client.closed

    def test_context_manager_then_explicit_close(self, server):
        with ServingClient(*server.address) as client:
            client.predict(np.ones((1, N_FEATURES), dtype=np.uint8))
            assert not client.closed
        assert client.closed
        client.close()  # closing an already-exited client is fine too

    def test_closed_client_refuses_work_with_typed_error(self, server):
        """A dead client is replaced, never resurrected: every call after
        close() fails fast instead of touching a dead socket."""
        client = ServingClient(*server.address)
        client.close()
        with pytest.raises(StaleConnectionError, match="closed"):
            client.predict(np.ones((1, N_FEATURES), dtype=np.uint8))
        with pytest.raises(StaleConnectionError, match="closed"):
            client.ping()
        with pytest.raises(StaleConnectionError, match="closed"):
            client.stats()
