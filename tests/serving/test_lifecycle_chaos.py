"""Seeded lifecycle fuzzer: random register/promote/shadow/retire under load.

A live :class:`BackgroundServer` takes a randomized-but-reproducible
interleaving of lifecycle mutations (register a version, promote, shadow,
canary, unregister, predict traffic) and must keep three invariants at
every checkpoint:

* **serving pointer valid** — the family always resolves to a live record
  in the ``serving`` state whose version matches the exported gauge;
* **retire accounting exact** — after quiescing, the set of versions whose
  ``on_retire`` hook has *not* fired is exactly the set of live versions
  (the WorkerPool-detach contract: a retired version never leaves a
  worker-side attachment behind, a live one is never detached early);
* **stats monotonic and budget drained** — completed-request counters
  never step backwards and the shared admission budget returns to zero.

Defaults are sized for CI (``make check``); crank ``REPRO_SOAK_OPS`` (and
optionally ``REPRO_SOAK_SEED``) for a real soak::

    REPRO_SOAK_OPS=2000 python -m pytest tests/serving/test_lifecycle_chaos.py

The outcome is recorded into ``BENCH_results.json`` via
``bench_utils.record_gate`` so soak runs leave a machine-readable trail.
"""

import os
import random
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.serving import (
    BackgroundServer,
    InferenceServer,
    ModelNotFoundError,
    ServingClient,
)
from repro.serving.queue import ServingError
from repro.serving.registry import SERVING

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))
from bench_utils import record_gate  # noqa: E402

N_FEATURES = 16
N_CLASSES = 4
SOAK_OPS = int(os.environ.get("REPRO_SOAK_OPS", "40"))
SOAK_SEED = int(os.environ.get("REPRO_SOAK_SEED", "20260808"))
MAX_LIVE_VERSIONS = 5
CHECK_EVERY = 10  # full quiesce + deep invariant sweep cadence


def flavor_fn(flavor: int):
    """One of a handful of deterministic model behaviours; versions that
    share a flavor are bit-identical (clean candidates), versions that
    don't diverge on every row."""

    def batch_fn(X):
        return (np.asarray(X, dtype=np.int64).sum(axis=1) + flavor) % N_CLASSES

    return batch_fn


class Fuzzer:
    def __init__(self, handle, client, rng, attached):
        self.handle = handle
        self.client = client
        self.rng = rng
        self.registry = handle.server.registry
        self.next_version = 2
        #: versions whose on_retire hook has not fired yet — must converge
        #: to exactly the live version set at every quiesce point
        self.attached = attached
        self.flavors = {1: 1}
        self.last_completed = 0
        self.X = np.asarray(
            [[(i >> b) & 1 for b in range(N_FEATURES)] for i in range(32)],
            dtype=np.uint8,
        )

    def on_loop(self, fn):
        """Run a plain callable on the server loop — registry state is
        loop-confined, and background tasks (canary watchers, drains)
        mutate it at any moment; reading it from the test thread would
        race a half-applied flip."""

        async def _do():
            return fn()

        return self.handle.run(_do())

    # ------------------------------------------------------------------ ops
    def live_versions(self):
        return self.on_loop(
            lambda: [
                v["version"]
                for v in self.registry.describe_family("m")["versions"]
                if v["state"] in ("serving", "standby")
            ]
        )

    def live_flavors(self):
        return self.on_loop(
            lambda: {
                self.flavors[v["version"]]
                for v in self.registry.describe_family("m")["versions"]
                if v["state"] in ("serving", "standby")
                and v["version"] in self.flavors
            }
        )

    def standby_versions(self):
        def read():
            serving = self.registry.serving_versions()["m"]
            return [
                v["version"]
                for v in self.registry.describe_family("m")["versions"]
                if v["state"] == "standby" and v["version"] != serving
            ]

        return self.on_loop(read)

    def op_register(self):
        if len(self.live_versions()) >= MAX_LIVE_VERSIONS:
            return self.op_promote()
        version = self.next_version
        self.next_version += 1
        flavor = self.rng.choice([1, 2, 3])
        self.flavors[version] = flavor

        async def _do():
            return self.handle.server.register_model(
                "m",
                flavor_fn(flavor),
                version=version,
                on_retire=lambda v=version: self.attached.discard(v),
            )

        self.handle.run(_do())
        self.attached.add(version)

    def op_promote(self):
        standby = self.standby_versions()
        if not standby:
            return self.op_register()
        self.client.promote("m", self.rng.choice(standby))

    def op_set_shadow(self):
        standby = self.standby_versions()
        if not standby:
            return self.op_register()
        self.client.set_shadow(
            "m",
            self.rng.choice(standby),
            fraction=self.rng.choice([0.5, 1.0]),
        )

    def op_clear_shadow(self):
        self.client.clear_shadow("m")

    def op_canary(self):
        standby = self.standby_versions()
        if not standby:
            return self.op_register()
        self.client.promote_canary(
            "m",
            self.rng.choice(standby),
            min_requests=self.rng.choice([1, 2, 3]),
        )

    def op_unregister_version(self):
        standby = self.standby_versions()
        if not standby:
            return self.op_register()

        async def _do():
            return self.registry.unregister_version(
                "m", self.rng.choice(standby)
            )

        self.handle.run(_do())

    def op_predict(self):
        n = self.rng.randrange(1, 9)
        rows = self.X[self.rng.randrange(0, len(self.X) - n) :][:n]
        pre = self.live_flavors()  # flavors live when the request departs
        labels = self.client.predict(rows, model="m")
        # the reply must be bit-exact against a flavor that was live at
        # some point during the request — a torn reply matches none.  (A
        # background canary can retire the answering version mid-flight,
        # hence pre ∪ post rather than post alone.)
        candidates = pre | self.live_flavors()
        assert any(
            np.array_equal(labels, flavor_fn(f)(rows)) for f in candidates
        ), f"reply matches no live version flavor (live {candidates})"

    OPS = (
        (op_predict, 6),
        (op_register, 3),
        (op_promote, 2),
        (op_set_shadow, 2),
        (op_canary, 1),
        (op_clear_shadow, 1),
        (op_unregister_version, 1),
    )

    # ------------------------------------------------------------ invariants
    def check_fast(self):
        """Cheap invariants after every op (no quiesce)."""

        def read():
            entry = self.registry.resolve("m")
            return (
                entry.state,
                entry.version,
                self.registry.serving_versions()["m"],
                entry.stats.snapshot()["requests_completed"],
            )

        state, version, serving, completed = self.on_loop(read)
        assert state == SERVING
        assert version == serving
        assert completed >= self.last_completed, "stats went backwards"
        self.last_completed = completed

    def check_deep(self):
        """Full sweep at a quiesce point: drains settled, accounting exact."""

        async def _quiesce():
            await self.registry.wait_idle()

        self.handle.run(_quiesce())
        self.check_fast()
        live = set(self.live_versions())
        assert self.attached == live, (
            f"retire-hook accounting drifted: hooks live for "
            f"{sorted(self.attached)}, registry live {sorted(live)}"
        )
        assert self.registry.budget.outstanding == 0

    def run(self, n_ops):
        ops = [op for op, weight in self.OPS for _ in range(weight)]
        for i in range(n_ops):
            op = self.rng.choice(ops)
            try:
                op(self)
            except (ServingError, ModelNotFoundError, ValueError):
                # typed rejections (promoting a just-retired version, bad
                # shadow target...) are legal fuzz outcomes, not failures
                pass
            self.check_fast()
            if (i + 1) % CHECK_EVERY == 0:
                self.check_deep()
        self.check_deep()


def test_lifecycle_chaos_soak():
    srv = InferenceServer(
        max_batch=16,
        max_wait_us=500,
        max_queue=50_000,
        max_total_queue=50_000,
    )
    attached = {1}
    srv.register_model(
        "m",
        flavor_fn(1),
        version=1,
        on_retire=lambda: attached.discard(1),
    )
    passed = 0.0
    divergences = 0
    try:
        with BackgroundServer(srv) as handle:
            with ServingClient(*handle.address) as client:
                fuzzer = Fuzzer(
                    handle, client, random.Random(SOAK_SEED), attached
                )
                fuzzer.run(SOAK_OPS)
                report = client.shadow_report("m")
                divergences = report["total_divergences"]
                assert report["total_requests"] >= 0
        passed = 1.0
    finally:
        record_gate("lifecycle_soak", passed, 1.0, unit="pass")
        record_gate(
            "lifecycle_soak_divergences_recorded",
            float(divergences),
            0.0,
            unit="count",
        )


def test_soak_knobs_are_read():
    """The env knobs exist and parse — a soak driver depends on them."""
    assert SOAK_OPS >= 1
    assert isinstance(SOAK_SEED, int)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-x", "-q"]))
