"""Unit tests for the binary wire format: framing, limits, discrimination.

End-to-end binary serving (client -> server -> engine) lives in
``test_server.py``; this file exercises the codec in isolation — encode /
``read_frame`` round-trips, the JSON-vs-binary first-byte discrimination on
a shared stream, truncation and oversized-header rejection, and the
blocking ``recv_reply`` side including its typed-error raising.
"""

import asyncio
import socket
import struct

import numpy as np
import pytest

from repro.engine import pack_bits, unpack_bits
from repro.serving import (
    BadRequestError,
    BinaryProtocolError,
    BinaryRequest,
    ModelNotFoundError,
    ProtocolError,
    ServerOverloadedError,
    ServingError,
    encode_message,
    encode_predict_request,
    encode_reply,
    recv_reply,
)
from repro.serving.binary_protocol import (
    BINARY_MAGIC,
    BINARY_VERSION,
    MAX_PAYLOAD_BYTES,
    OP_PREDICT,
    encode_error,
    read_frame,
)
from repro.utils.rng import as_rng


def _read_one(*byte_chunks):
    """Drive ``read_frame`` over an in-memory StreamReader."""

    async def main():
        reader = asyncio.StreamReader()
        for chunk in byte_chunks:
            reader.feed_data(chunk)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(main())


def _recv_from_bytes(data):
    """Run the blocking ``recv_reply`` against a one-shot socketpair."""
    left, right = socket.socketpair()
    try:
        left.sendall(data)
        left.close()
        return recv_reply(right)
    finally:
        right.close()


class TestPredictFraming:
    def test_round_trip_preserves_words_exactly(self):
        rng = as_rng(3)
        rows = rng.integers(0, 2, size=(70, 33), dtype=np.uint8)
        packed = pack_bits(rows)

        frame = encode_predict_request(
            packed, 70, model="digits", return_scores=True, request_id=99
        )
        request = _read_one(frame)

        assert isinstance(request, BinaryRequest)
        assert request.request_id == 99
        assert request.model == "digits"
        assert request.n_samples == 70
        assert request.return_scores is True
        np.testing.assert_array_equal(request.packed, packed)
        np.testing.assert_array_equal(
            unpack_bits(np.ascontiguousarray(request.packed), 70), rows
        )

    def test_empty_model_name_means_default(self):
        packed = pack_bits(np.ones((2, 4), dtype=np.uint8))
        request = _read_one(encode_predict_request(packed, 2))
        assert request.model is None
        assert request.return_scores is False
        assert request.request_id == 0

    def test_frame_split_across_many_feeds(self):
        """Reassembly works however the transport fragments the bytes."""
        packed = pack_bits(np.eye(5, dtype=np.uint8))
        frame = encode_predict_request(packed, 5, model="m")
        chunks = [frame[i : i + 3] for i in range(0, len(frame), 3)]
        request = _read_one(*chunks)
        np.testing.assert_array_equal(request.packed, packed)

    def test_eof_before_any_frame_is_none(self):
        assert _read_one() is None

    def test_wrong_word_count_rejected_at_encode(self):
        packed = pack_bits(np.ones((65, 4), dtype=np.uint8))  # 2 words
        with pytest.raises(BinaryProtocolError):
            encode_predict_request(packed, 64)  # 64 samples need 1 word


class TestMalformedFrames:
    def test_truncated_mid_frame(self):
        packed = pack_bits(np.ones((3, 4), dtype=np.uint8))
        frame = encode_predict_request(packed, 3)
        with pytest.raises(BinaryProtocolError, match="mid-binary-frame"):
            _read_one(frame[: len(frame) - 5])

    def test_truncated_mid_header(self):
        frame = encode_predict_request(pack_bits(np.ones((1, 2), dtype=np.uint8)), 1)
        with pytest.raises(BinaryProtocolError):
            _read_one(frame[:4])

    def test_oversized_header_rejected_before_allocation(self):
        """A hostile header announcing gigabytes fails fast on sizes alone."""
        huge = struct.pack(
            "<BBBBIHII",
            BINARY_MAGIC,
            BINARY_VERSION,
            OP_PREDICT,
            0,
            0,
            0,
            2**31,  # n_samples
            2**16,  # n_features -> petabytes of implied payload
        )
        with pytest.raises(BinaryProtocolError, match="cap"):
            _read_one(huge)

    def test_unknown_version_rejected(self):
        frame = bytearray(
            encode_predict_request(pack_bits(np.ones((1, 2), dtype=np.uint8)), 1)
        )
        frame[1] = 42  # version byte
        with pytest.raises(BinaryProtocolError, match="version"):
            _read_one(bytes(frame))

    def test_server_rejects_non_predict_opcodes(self):
        with pytest.raises(BinaryProtocolError, match="opcode"):
            _read_one(encode_reply(np.array([1, 2])))

    def test_oversized_payload_rejected_at_encode(self):
        words = 1 + MAX_PAYLOAD_BYTES // (8 * 4)
        packed = np.zeros((4, words), dtype=np.uint64)
        with pytest.raises(BinaryProtocolError, match="cap"):
            encode_predict_request(packed, words * 64)


class TestSharedListenerDiscrimination:
    def test_json_frame_still_parses(self):
        message = _read_one(encode_message({"op": "ping", "id": 7}))
        assert message == {"op": "ping", "id": 7}

    def test_json_then_binary_then_json_on_one_stream(self):
        packed = pack_bits(np.ones((4, 6), dtype=np.uint8))
        stream = (
            encode_message({"op": "ping"})
            + encode_predict_request(packed, 4, request_id=5)
            + encode_message({"op": "stats"})
        )

        async def main():
            reader = asyncio.StreamReader()
            reader.feed_data(stream)
            reader.feed_eof()
            return [await read_frame(reader) for _ in range(3)]

        first, second, third = asyncio.run(main())
        assert first == {"op": "ping"}
        assert isinstance(second, BinaryRequest)
        assert second.request_id == 5
        assert third == {"op": "stats"}

    def test_json_truncation_errors_match_json_protocol(self):
        frame = encode_message({"op": "ping"})
        with pytest.raises(ProtocolError, match="mid-message"):
            _read_one(frame[:-2])
        with pytest.raises(ProtocolError, match="mid-header"):
            _read_one(frame[:2])


class TestReplySide:
    def test_labels_only_round_trip(self):
        labels = np.array([3, 1, 4, 1, 5], dtype=np.int64)
        reply = _recv_from_bytes(encode_reply(labels, request_id=12))
        assert reply.request_id == 12
        assert reply.scores is None
        np.testing.assert_array_equal(reply.labels, labels)

    def test_scores_round_trip_is_lossless_including_non_finite(self):
        """Raw IEEE doubles cross the wire — inf/NaN included, bit for bit."""
        labels = np.array([0, 1], dtype=np.int64)
        scores = np.array(
            [[np.nan, -np.inf, 1.5], [np.inf, 2.25, -0.0]], dtype=np.float64
        )
        reply = _recv_from_bytes(encode_reply(labels, scores))
        np.testing.assert_array_equal(reply.labels, labels)
        np.testing.assert_array_equal(
            np.isnan(reply.scores), np.isnan(scores)
        )
        mask = ~np.isnan(scores)
        np.testing.assert_array_equal(reply.scores[mask], scores[mask])

    @pytest.mark.parametrize(
        "error_type, exc",
        [
            ("overloaded", ServerOverloadedError),
            ("bad_request", BadRequestError),
            ("model_not_found", ModelNotFoundError),
            ("internal", ServingError),
        ],
    )
    def test_error_frames_raise_the_same_typed_exceptions_as_json(
        self, error_type, exc
    ):
        with pytest.raises(exc, match="boom"):
            _recv_from_bytes(encode_error(error_type, "boom"))

    def test_truncated_reply_raises(self):
        frame = encode_reply(np.arange(8, dtype=np.int64))
        with pytest.raises(BinaryProtocolError, match="mid-"):
            _recv_from_bytes(frame[:-3])

    def test_reply_to_a_json_first_byte_is_rejected(self):
        with pytest.raises(BinaryProtocolError, match="leading byte"):
            _recv_from_bytes(encode_message({"ok": True}))
