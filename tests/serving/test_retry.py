"""RetryPolicy tests: the backoff schedule, and a client against flaky servers.

The fakes exercise exactly the two opt-in retry surfaces: a listener that
only starts accepting after the client's first connect attempts have been
refused, and a protocol-speaking server that sheds the first requests with
the typed ``overloaded`` error before serving.
"""

import socket
import threading

import numpy as np
import pytest

from repro.serving import (
    RetryPolicy,
    ServerOverloadedError,
    ServingClient,
    ServingError,
)
from repro.serving.protocol import recv_message, send_message


class TestRetryPolicySchedule:
    def test_deterministic_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.5,
            jitter=0.0,
        )
        assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.4, 0.5])

    def test_jitter_bounds_and_seed(self):
        policy = RetryPolicy(
            max_attempts=9, base_delay=0.1, multiplier=1.0, jitter=0.5, seed=3
        )
        delays = list(policy.delays())
        assert len(delays) == 8
        assert all(0.05 <= d <= 0.15 for d in delays)
        assert list(policy.delays()) == delays  # seeded: reproducible
        assert len(set(delays)) > 1  # but actually jittered

    def test_call_retries_then_succeeds(self):
        sleeps = []
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.01, jitter=0.0, sleep=sleeps.append
        )
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ServerOverloadedError("busy")
            return "served"

        assert policy.call(flaky, retry_on=(ServerOverloadedError,)) == "served"
        assert len(attempts) == 3
        assert sleeps == pytest.approx([0.01, 0.02])

    def test_call_exhausts_attempts_with_the_typed_error(self):
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.0, jitter=0.0, sleep=lambda _: None
        )
        attempts = []

        def always_busy():
            attempts.append(1)
            raise ServerOverloadedError("still busy")

        with pytest.raises(ServerOverloadedError, match="still busy"):
            policy.call(always_busy, retry_on=(ServerOverloadedError,))
        assert len(attempts) == 3

    def test_unlisted_errors_propagate_immediately(self):
        policy = RetryPolicy(max_attempts=5, sleep=lambda _: None)
        attempts = []

        def bad():
            attempts.append(1)
            raise ServingError("model exploded")

        with pytest.raises(ServingError):
            policy.call(bad, retry_on=(ServerOverloadedError,))
        assert len(attempts) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class _LateListener:
    """A fake server whose listener only appears after N connect failures.

    The port is reserved up front (bound, then closed) so refused connects
    are deterministic; the policy's ``sleep`` hook doubles as the trigger
    that finally starts accepting.
    """

    def __init__(self, failures_before_up: int) -> None:
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        self.address = probe.getsockname()
        probe.close()
        self._remaining = failures_before_up
        self._server: socket.socket = None
        self.sleeps = []

    def sleep_hook(self, delay: float) -> None:
        self.sleeps.append(delay)
        self._remaining -= 1
        if self._remaining <= 0 and self._server is None:
            self._server = socket.socket()
            self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._server.bind(self.address)
            self._server.listen(4)

    def close(self) -> None:
        if self._server is not None:
            self._server.close()


class TestConnectRetries:
    def test_client_connects_once_the_listener_appears(self):
        listener = _LateListener(failures_before_up=2)
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.001, jitter=0.0,
            sleep=listener.sleep_hook,
        )
        try:
            client = ServingClient(*listener.address, retry=policy)
            client.close()
        finally:
            listener.close()
        assert len(listener.sleeps) == 2  # two refusals, then connected

    def test_connect_gives_up_after_max_attempts(self):
        listener = _LateListener(failures_before_up=99)  # never comes up
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.001, jitter=0.0,
            sleep=listener.sleep_hook,
        )
        with pytest.raises(OSError):
            ServingClient(*listener.address, retry=policy)
        assert len(listener.sleeps) == 2

    def test_no_policy_means_no_retry(self):
        listener = _LateListener(failures_before_up=1)
        with pytest.raises(OSError):
            ServingClient(*listener.address)
        assert listener.sleeps == []


class _SheddingServer:
    """A protocol-speaking fake that sheds the first ``n_sheds`` predicts."""

    def __init__(self, n_sheds: int) -> None:
        self._n_sheds = n_sheds
        self.requests_seen = 0
        self._server = socket.socket()
        self._server.bind(("127.0.0.1", 0))
        self._server.listen(4)
        self.address = self._server.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        try:
            conn, _ = self._server.accept()
        except OSError:  # pragma: no cover - closed before a connect
            return
        with conn:
            while True:
                try:
                    request = recv_message(conn)
                except Exception:  # pragma: no cover - client hung up
                    return
                if request is None:
                    return
                self.requests_seen += 1
                if self.requests_seen <= self._n_sheds:
                    send_message(
                        conn,
                        {
                            "ok": False,
                            "error": {
                                "type": "overloaded",
                                "message": "fake shed",
                            },
                        },
                    )
                else:
                    k = len(request["features"])
                    send_message(conn, {"ok": True, "labels": [0] * k})

    def close(self) -> None:
        self._server.close()
        self._thread.join(timeout=5)


class TestShedRetries:
    def test_predict_retries_sheds_until_served(self):
        server = _SheddingServer(n_sheds=2)
        sleeps = []
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.001, jitter=0.0, sleep=sleeps.append
        )
        try:
            with ServingClient(*server.address, retry=policy) as client:
                labels = client.predict(np.ones((2, 4), dtype=np.uint8))
        finally:
            server.close()
        np.testing.assert_array_equal(labels, [0, 0])
        assert server.requests_seen == 3  # two sheds + the served retry
        assert len(sleeps) == 2

    def test_predict_raises_after_exhausting_retries(self):
        server = _SheddingServer(n_sheds=99)
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.001, jitter=0.0, sleep=lambda _: None
        )
        try:
            with ServingClient(*server.address, retry=policy) as client:
                with pytest.raises(ServerOverloadedError):
                    client.predict(np.ones((1, 4), dtype=np.uint8))
        finally:
            server.close()
        assert server.requests_seen == 3

    def test_without_policy_shed_is_immediate(self):
        server = _SheddingServer(n_sheds=1)
        try:
            with ServingClient(*server.address) as client:
                with pytest.raises(ServerOverloadedError):
                    client.predict(np.ones((1, 4), dtype=np.uint8))
        finally:
            server.close()
        assert server.requests_seen == 1
