"""Tests for the synthetic image dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    load_dataset,
    make_synthetic_cifar10,
    make_synthetic_mnist,
    make_synthetic_svhn,
)
from repro.datasets.registry import DATASET_BUILDERS


class TestSyntheticMnist:
    def test_shapes(self):
        data = make_synthetic_mnist(n_train=50, n_test=20, seed=0)
        assert data.X_train.shape == (50, 28, 28, 1)
        assert data.X_test.shape == (20, 28, 28, 1)
        assert data.n_classes == 10

    def test_value_range(self):
        data = make_synthetic_mnist(n_train=30, n_test=10, seed=0)
        assert data.X_train.min() >= 0.0
        assert data.X_train.max() <= 1.0

    def test_reproducible(self):
        a = make_synthetic_mnist(n_train=20, n_test=5, seed=3)
        b = make_synthetic_mnist(n_train=20, n_test=5, seed=3)
        np.testing.assert_array_equal(a.X_train, b.X_train)
        np.testing.assert_array_equal(a.y_train, b.y_train)

    def test_different_seeds_differ(self):
        a = make_synthetic_mnist(n_train=20, n_test=5, seed=1)
        b = make_synthetic_mnist(n_train=20, n_test=5, seed=2)
        assert not np.array_equal(a.X_train, b.X_train)

    def test_flattened_view(self):
        data = make_synthetic_mnist(n_train=10, n_test=5, seed=0)
        flat = data.flattened()
        assert flat.X_train.shape == (10, 28 * 28)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            make_synthetic_mnist(n_train=0, n_test=5)


class TestSyntheticCifar10:
    def test_shapes(self):
        data = make_synthetic_cifar10(n_train=40, n_test=10, seed=0)
        assert data.X_train.shape == (40, 32, 32, 3)
        assert data.n_classes == 10

    def test_classes_use_colour(self):
        data = make_synthetic_cifar10(n_train=300, n_test=10, seed=0)
        means = []
        for cls in (0, 2):
            mask = data.y_train == cls
            if mask.sum() > 0:
                means.append(data.X_train[mask].mean(axis=(0, 1, 2)))
        assert len(means) == 2
        assert not np.allclose(means[0], means[1], atol=0.05)

    def test_reproducible(self):
        a = make_synthetic_cifar10(n_train=15, n_test=5, seed=7)
        b = make_synthetic_cifar10(n_train=15, n_test=5, seed=7)
        np.testing.assert_array_equal(a.X_train, b.X_train)


class TestSyntheticSvhn:
    def test_shapes(self):
        data = make_synthetic_svhn(n_train=40, n_test=10, seed=0)
        assert data.X_train.shape == (40, 32, 32, 3)
        assert data.n_classes == 10

    def test_backgrounds_nonzero(self):
        data = make_synthetic_svhn(n_train=50, n_test=10, seed=0)
        mnist = make_synthetic_mnist(n_train=50, n_test=10, seed=0)
        assert data.X_train.mean() > mnist.X_train.mean()

    def test_reproducible(self):
        a = make_synthetic_svhn(n_train=15, n_test=5, seed=4)
        b = make_synthetic_svhn(n_train=15, n_test=5, seed=4)
        np.testing.assert_array_equal(a.X_train, b.X_train)


class TestRegistry:
    @pytest.mark.parametrize("name", ["mnist", "cifar10", "svhn", "CIFAR-10"])
    def test_known_names(self, name):
        data = load_dataset(name, n_train=10, n_test=5, seed=0)
        assert data.n_train == 10

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet")

    def test_registry_covers_paper_datasets(self):
        assert set(DATASET_BUILDERS) == {"mnist", "cifar10", "svhn"}


class TestDescribe:
    def test_describe_mentions_name_and_sizes(self):
        data = make_synthetic_mnist(n_train=12, n_test=6, seed=0)
        text = data.describe()
        assert "synthetic-mnist" in text
        assert "12" in text and "6" in text
