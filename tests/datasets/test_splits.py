"""Tests for dataset splitting helpers."""

import numpy as np
import pytest

from repro.datasets.splits import stratified_split, train_val_test_split


class TestStratifiedSplit:
    def test_preserves_class_ratio(self, rng):
        X = rng.normal(size=(300, 4))
        y = np.repeat([0, 1, 2], 100)
        X_tr, y_tr, X_te, y_te = stratified_split(X, y, test_fraction=0.2, seed=0)
        for cls in (0, 1, 2):
            assert np.sum(y_te == cls) == 20
            assert np.sum(y_tr == cls) == 80

    def test_no_overlap_and_complete(self, rng):
        X = np.arange(100).reshape(100, 1)
        y = np.repeat([0, 1], 50)
        X_tr, y_tr, X_te, y_te = stratified_split(X, y, test_fraction=0.3, seed=1)
        combined = np.sort(np.concatenate([X_tr[:, 0], X_te[:, 0]]))
        np.testing.assert_array_equal(combined, np.arange(100))

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            stratified_split(np.zeros((10, 1)), np.zeros(10, dtype=int), test_fraction=1.5)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            stratified_split(np.zeros((10, 1)), np.zeros(5, dtype=int))


class TestTrainValTestSplit:
    def test_sizes(self, rng):
        X = rng.normal(size=(100, 3))
        y = rng.integers(0, 2, size=100)
        X_tr, y_tr, X_val, y_val, X_te, y_te = train_val_test_split(
            X, y, val_fraction=0.1, test_fraction=0.2, seed=0
        )
        assert len(X_te) == 20
        assert len(X_val) == 10
        assert len(X_tr) == 70

    def test_partition_complete(self, rng):
        X = np.arange(50).reshape(50, 1)
        y = np.zeros(50, dtype=int)
        parts = train_val_test_split(X, y, val_fraction=0.2, test_fraction=0.2, seed=3)
        all_vals = np.sort(np.concatenate([parts[0][:, 0], parts[2][:, 0], parts[4][:, 0]]))
        np.testing.assert_array_equal(all_vals, np.arange(50))

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            train_val_test_split(
                np.zeros((10, 1)), np.zeros(10, dtype=int), val_fraction=0.6, test_fraction=0.6
            )
