"""Tests for the binary-feature task generators."""

import numpy as np
import pytest

from repro.datasets import (
    make_binary_intermediate_task,
    make_binary_parity_task,
    make_binary_teacher_task,
    make_correlated_binary_task,
)


class TestTeacherTask:
    def test_shapes_and_binary(self):
        data = make_binary_teacher_task(n_train=100, n_test=50, n_features=32, n_active=8)
        assert data.X_train.shape == (100, 32)
        assert set(np.unique(data.X_train)) <= {0, 1}
        assert set(np.unique(data.y_train)) <= {0, 1}

    def test_labels_depend_only_on_support(self):
        data = make_binary_teacher_task(
            n_train=200, n_test=50, n_features=64, n_active=8, seed=1
        )
        support = data.metadata["support"]
        X = data.X_train.copy()
        off_support = np.setdiff1d(np.arange(64), support)
        X[:, off_support] = 0  # wiping non-support features must not change labels
        # re-deriving labels requires the hidden neuron, so instead check that
        # two samples identical on the support always share a label
        key = [tuple(row) for row in data.X_train[:, support]]
        seen = {}
        for k, label in zip(key, data.y_train):
            if k in seen:
                assert seen[k] == label
            else:
                seen[k] = label

    def test_label_noise_flips_labels(self):
        clean = make_binary_teacher_task(n_train=500, n_test=10, seed=5, label_noise=0.0)
        noisy = make_binary_teacher_task(n_train=500, n_test=10, seed=5, label_noise=0.3)
        assert np.mean(clean.y_train != noisy.y_train) > 0.1

    def test_invalid_active_rejected(self):
        with pytest.raises(ValueError):
            make_binary_teacher_task(n_features=8, n_active=16)

    def test_reproducible(self):
        a = make_binary_teacher_task(seed=2, n_train=50, n_test=10)
        b = make_binary_teacher_task(seed=2, n_train=50, n_test=10)
        np.testing.assert_array_equal(a.X_train, b.X_train)
        np.testing.assert_array_equal(a.y_train, b.y_train)


class TestIntermediateTask:
    def test_multiclass_labels(self):
        data = make_binary_intermediate_task(
            n_train=300, n_test=50, n_features=64, n_classes=10, n_hidden=20, n_active=8
        )
        assert data.n_classes == 10
        assert data.y_train.max() < 10
        assert len(np.unique(data.y_train)) > 3

    def test_shapes(self):
        data = make_binary_intermediate_task(n_train=100, n_test=20, n_features=48)
        assert data.X_train.shape == (100, 48)


class TestParityTask:
    def test_parity_definition(self):
        data = make_binary_parity_task(n_train=200, n_test=50, n_features=16, parity_bits=3)
        support = data.metadata["support"]
        expected = data.X_train[:, support].sum(axis=1) % 2
        np.testing.assert_array_equal(data.y_train, expected)

    def test_roughly_balanced(self):
        data = make_binary_parity_task(n_train=1000, n_test=10, seed=0)
        assert 0.4 < data.y_train.mean() < 0.6

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            make_binary_parity_task(n_features=4, parity_bits=8)


class TestCorrelatedTask:
    def test_shapes(self):
        data = make_correlated_binary_task(n_train=100, n_test=20, n_blocks=4, block_size=5)
        assert data.X_train.shape == (100, 20)

    def test_features_correlate_with_latent(self):
        data = make_correlated_binary_task(
            n_train=2000, n_test=10, n_blocks=4, block_size=4, flip_prob=0.05, seed=0
        )
        X = data.X_train.astype(float)
        # features in the same block should correlate strongly
        corr_within = np.corrcoef(X[:, 0], X[:, 1])[0, 1]
        corr_across = np.corrcoef(X[:, 0], X[:, 5])[0, 1]
        assert corr_within > 0.7
        assert abs(corr_across) < 0.2
