"""Tests for the procedural glyph renderer."""

import numpy as np
import pytest

from repro.datasets._glyphs import glyph_bitmap, render_digit


class TestGlyphBitmap:
    @pytest.mark.parametrize("digit", range(10))
    def test_all_digits_render(self, digit):
        bitmap = glyph_bitmap(digit)
        assert bitmap.shape == (16, 10)
        assert bitmap.max() == 1.0

    def test_digits_are_distinct(self):
        bitmaps = [glyph_bitmap(d).tobytes() for d in range(10)]
        assert len(set(bitmaps)) == 10

    def test_one_has_fewest_pixels(self):
        areas = {d: glyph_bitmap(d).sum() for d in range(10)}
        assert min(areas, key=areas.get) == 1

    def test_eight_has_most_pixels(self):
        areas = {d: glyph_bitmap(d).sum() for d in range(10)}
        assert max(areas, key=areas.get) == 8

    def test_invalid_digit_rejected(self):
        with pytest.raises(ValueError):
            glyph_bitmap(10)

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError):
            glyph_bitmap(0, height=3, width=3)


class TestRenderDigit:
    def test_shape_and_range(self, rng):
        img = render_digit(3, rng, canvas_size=28)
        assert img.shape == (28, 28)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_noise_changes_samples(self, rng):
        a = render_digit(5, rng)
        b = render_digit(5, rng)
        assert not np.array_equal(a, b)

    def test_background_raises_mean(self, rng):
        dark = render_digit(1, np.random.default_rng(0), background=0.0)
        bright = render_digit(1, np.random.default_rng(0), background=0.4)
        assert bright.mean() > dark.mean()
